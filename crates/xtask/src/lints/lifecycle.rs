//! `lifecycle-single-writer` — `LinkLifecycle::apply` is the only
//! transition construction site.
//!
//! PR 1's state machine routes every link-state change through one
//! decision point so the transition log is a complete, ordered record of
//! the link's history. That collapses the moment any other module builds
//! a [`Transition`] value by hand — the log would contain entries the
//! state machine never decided. This pass forbids `Transition { … }`
//! struct literals everywhere except:
//!
//! - `crates/core/src/linkstate.rs` itself (the state machine), and
//! - test code (`tests/` files and `#[cfg(test)]` regions), which builds
//!   transition tapes to drive property tests.
//!
//! Reading, matching, cloning, or draining transitions is unrestricted —
//! only *construction* is single-writer.
//!
//! The fleet refactor adds a second rule with the same shape one level
//! up: in fleet mode, per-UE lifecycle state is written only by
//! `StateHandler::pass` (crates/core/src/statehandler.rs), which is the
//! sole site that converts queued intents into `LinkSignal`s. Any other
//! module spelling `LinkSignal` outside `crates/core/src/` is driving a
//! lifecycle machine directly instead of queueing an [`Intent`] — the
//! exact back door the StateHandler/IO split closes. Core itself (the
//! state machine, the single-link controller, the handler) is the
//! allowed writer set; tests are exempt as above.

use crate::diag::Finding;
use crate::lints::{find_token, snippet_at};
use crate::regions::{in_any, test_regions};
use crate::scrub::Scrubbed;
use std::path::Path;

pub fn in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    if p == "crates/core/src/linkstate.rs" {
        return false;
    }
    // Integration-test and fixture trees may construct transitions.
    if p.contains("/tests/") {
        return false;
    }
    p.starts_with("crates/") && p.contains("/src/")
}

pub fn run(rel: &Path, src: &str, scrubbed: &Scrubbed) -> Vec<Finding> {
    if !in_scope(rel) {
        return Vec::new();
    }
    let tests = test_regions(scrubbed, src);
    let mut out = Vec::new();
    // Match `Transition {` with any spacing, word-bounded on the left so
    // `TransitionCause {`-style names do not fire.
    let text = scrubbed.text.as_bytes();
    let mut i = 0;
    while let Some(off) = scrubbed.text[i..].find("Transition") {
        let start = i + off;
        i = start + "Transition".len();
        let before_ok =
            start == 0 || !(text[start - 1].is_ascii_alphanumeric() || text[start - 1] == b'_');
        let mut j = start + "Transition".len();
        if !before_ok || j >= text.len() {
            continue;
        }
        // Identifier continues (TransitionCause, Transitions) → not the type.
        if text[j].is_ascii_alphanumeric() || text[j] == b'_' {
            continue;
        }
        while j < text.len() && text[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= text.len() || text[j] != b'{' {
            continue;
        }
        if in_any(&tests, start) {
            continue;
        }
        let (line, col) = scrubbed.line_col(start);
        out.push(Finding {
            lint: "lifecycle-single-writer",
            file: rel.to_path_buf(),
            line,
            col,
            snippet: snippet_at(src, scrubbed, start),
            message: "`Transition { … }` constructed outside `LinkLifecycle::apply` \
                      (crates/core/src/linkstate.rs): the transition log must have one writer"
                .to_string(),
        });
    }
    // Fleet-mode rule: outside core, lifecycle machines are driven only
    // through the StateHandler's intent queue — naming `LinkSignal` at
    // all means a module is feeding a lifecycle directly.
    let p = rel.to_string_lossy().replace('\\', "/");
    if !p.starts_with("crates/core/src/") {
        for off in find_token(&scrubbed.text, "LinkSignal") {
            if in_any(&tests, off) {
                continue;
            }
            let (line, col) = scrubbed.line_col(off);
            out.push(Finding {
                lint: "lifecycle-single-writer",
                file: rel.to_path_buf(),
                line,
                col,
                snippet: snippet_at(src, scrubbed, off),
                message: "`LinkSignal` used outside crates/core/src/: fleet-mode lifecycle \
                          state is written only by `StateHandler::pass` — queue an `Intent` \
                          through the handler's `Io` instead of signalling a lifecycle directly"
                    .to_string(),
            });
        }
    }
    out
}
