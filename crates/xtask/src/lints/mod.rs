//! The lint passes.
//!
//! Each pass takes one [`crate::SourceFile`] (already scrubbed) and
//! returns raw findings; the engine in `lib.rs` then runs the
//! `xtask-allow` suppression/staleness layer over the union. Scoping —
//! which crates a pass applies to — lives with each pass, derived from
//! the workspace-relative path, so fixture tests can exercise scoping by
//! constructing virtual paths.

pub mod closure;
pub mod determinism;
pub mod hotpath;
pub mod lifecycle;
pub mod panic;
pub mod taint;
pub mod telemetry;

use crate::scrub::Scrubbed;

/// Byte offsets of word-bounded occurrences of `needle` in `text`.
///
/// A match is rejected when the needle starts (resp. ends) with an
/// identifier character and the preceding (resp. following) character is
/// also an identifier character — so `HashMap` does not match
/// `MyHashMapLike`, while needles like `.clone()` match after any
/// receiver.
pub fn find_token(text: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let bytes = text.as_bytes();
    let first_ident = needle.as_bytes().first().copied().map(is_ident) == Some(true);
    let last_ident = needle.as_bytes().last().copied().map(is_ident) == Some(true);
    let mut i = 0;
    while let Some(off) = text[i..].find(needle) {
        let start = i + off;
        let end = start + needle.len();
        let ok_before = !first_ident || start == 0 || !is_ident(bytes[start - 1]);
        let ok_after = !last_ident || end >= bytes.len() || !is_ident(bytes[end]);
        if ok_before && ok_after {
            out.push(start);
        }
        i = start + 1;
    }
    out
}

/// Shared helper: the verbatim source line at `offset`, for snippets.
pub fn snippet_at(src: &str, scrubbed: &Scrubbed, offset: usize) -> String {
    scrubbed.line_of(src, offset).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_boundaries() {
        assert_eq!(find_token("HashMap::new()", "HashMap").len(), 1);
        assert_eq!(find_token("MyHashMap", "HashMap").len(), 0);
        assert_eq!(find_token("HashMapLike", "HashMap").len(), 0);
        assert_eq!(find_token("x.clone();", ".clone()").len(), 1);
        assert_eq!(find_token("a.clone().clone()", ".clone()").len(), 2);
    }
}
