//! `determinism` — no nondeterminism in digest-affecting code paths.
//!
//! The replay/fingerprint story (DESIGN.md §9) promises that a journaled
//! campaign cell re-executes bit-identically. That only holds while the
//! crates that feed the digest — channel, dsp, array, phy, core, and the
//! sim's runner/simulator — never read a wall clock, never iterate a
//! randomized-order container, and never touch an OS entropy source. This
//! pass forbids the concrete spellings of those mistakes:
//!
//! - `Instant::now` — wall-clock reads; simulation time is the only clock
//!   allowed in the digest path (supervision wall clocks live in
//!   `campaign.rs`, which is out of scope here).
//! - `HashMap` / `HashSet` — `RandomState` seeds differ per process, so
//!   iteration order is nondeterministic; use `BTreeMap`/`BTreeSet` or a
//!   `Vec` keyed by insertion order.
//! - `from_entropy` / `OsRng` — OS entropy in a seeded-PRNG codebase.
//!
//! The cheap *unscoped* cases (`std::time::SystemTime::now`,
//! `rand::thread_rng`) are enforced workspace-wide by `clippy.toml`'s
//! `disallowed-methods` instead and deliberately **not** duplicated here
//! (satellite: de-dup xtask vs clippy).
//!
//! `#[cfg(test)]` regions are exempt: in-file tests may use whatever they
//! like — they do not feed digests.

use crate::diag::Finding;
use crate::lints::{find_token, snippet_at};
use crate::regions::{in_any, test_regions};
use crate::scrub::Scrubbed;
use std::path::Path;

/// (needle, why it is forbidden)
const FORBIDDEN: &[(&str, &str)] = &[
    (
        "Instant::now",
        "`Instant::now` reads the wall clock in a digest-affecting path; use simulated time",
    ),
    (
        "HashMap",
        "`HashMap` iteration order is seeded per process; use `BTreeMap` or an order-preserving Vec",
    ),
    (
        "HashSet",
        "`HashSet` iteration order is seeded per process; use `BTreeSet` or an order-preserving Vec",
    ),
    (
        "from_entropy",
        "OS entropy breaks seeded replay; derive all randomness from the run seed",
    ),
    (
        "OsRng",
        "OS entropy breaks seeded replay; derive all randomness from the run seed",
    ),
];

/// Digest-affecting scope: the pure-compute crates plus the sim's
/// runner/simulator, the hardware-impairment layer, and the fleet
/// scheduler — whose digest must stay invariant to worker/shard count,
/// so it reads wall clocks only through `mmwave_telemetry::StopWatch`
/// (latency-only, digest-excluded) and keys nothing on map order. The
/// spec/fuzz modules are in scope too: spec round-trips promise
/// bit-identical rebuilds and the fuzzer promises same-name-same-specs,
/// so neither may touch a wall clock, a randomized-order map, or OS
/// entropy. The campaign supervisor is intentionally excluded — its wall
/// clocks and maps never touch the payload.
pub fn in_scope(rel: &Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    for c in ["channel", "dsp", "array", "phy", "core"] {
        if p.starts_with(&format!("crates/{c}/src/")) {
            return true;
        }
    }
    p == "crates/sim/src/runner.rs"
        || p == "crates/sim/src/simulator.rs"
        || p == "crates/sim/src/impairments.rs"
        || p == "crates/sim/src/fleet.rs"
        || p == "crates/sim/src/spec.rs"
        || p == "crates/sim/src/fuzz.rs"
}

pub fn run(rel: &Path, src: &str, scrubbed: &Scrubbed) -> Vec<Finding> {
    if !in_scope(rel) {
        return Vec::new();
    }
    let tests = test_regions(scrubbed, src);
    let mut out = Vec::new();
    for (needle, why) in FORBIDDEN {
        for off in find_token(&scrubbed.text, needle) {
            if in_any(&tests, off) {
                continue;
            }
            let (line, col) = scrubbed.line_col(off);
            out.push(Finding {
                lint: "determinism",
                file: rel.to_path_buf(),
                line,
                col,
                snippet: snippet_at(src, scrubbed, off),
                message: (*why).to_string(),
            });
        }
    }
    out
}
