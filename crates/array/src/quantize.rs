//! Hardware weight quantization.
//!
//! Real phased arrays cannot apply arbitrary complex weights. The paper's
//! array offers 6-bit phase shifters and 27 dB of stepped gain control per
//! element (§5.1); commercial 802.11ad hardware gets by with 2-bit phase and
//! on/off amplitude. Every weight vector the controller produces passes
//! through a [`Quantizer`] before it reaches the (simulated) air, exactly as
//! on the testbed — Fig. 13d of the paper compares ideal vs quantized
//! multi-beam patterns, which `bench/figures fig13d` regenerates.

use crate::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::{amp_from_db, db_from_amp};
use std::f64::consts::PI;

/// Amplitude control model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AmplitudeControl {
    /// Ideal continuous amplitude (no quantization).
    Continuous,
    /// Stepped attenuator: amplitudes are expressed in dB relative to the
    /// strongest element, rounded to `step_db`, and elements more than
    /// `range_db` below the maximum are muted.
    SteppedDb {
        /// Attenuator step size in dB.
        step_db: f64,
        /// Total attenuation range in dB below the per-vector maximum.
        range_db: f64,
    },
    /// 1-bit amplitude: element fully on (if within `threshold_db` of the
    /// maximum) or off.
    OnOff {
        /// Elements weaker than this many dB below the max are switched off.
        threshold_db: f64,
    },
}

/// Phase + amplitude quantizer for beamforming weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantizer {
    /// Phase shifter resolution in bits (`2^bits` levels over 2π);
    /// `None` = ideal continuous phase.
    pub phase_bits: Option<u8>,
    /// Amplitude control model.
    pub amplitude: AmplitudeControl,
}

impl Quantizer {
    /// Ideal pass-through quantizer.
    pub fn ideal() -> Self {
        Self {
            phase_bits: None,
            amplitude: AmplitudeControl::Continuous,
        }
    }

    /// The paper's in-house array: 6-bit phase, 27 dB gain range
    /// (we model the attenuator step as 0.5 dB, typical of such parts).
    pub fn paper_array() -> Self {
        Self {
            phase_bits: Some(6),
            amplitude: AmplitudeControl::SteppedDb {
                step_db: 0.5,
                range_db: 27.0,
            },
        }
    }

    /// Commercial 802.11ad-class hardware: 2-bit phase, on/off amplitude
    /// (§5.1 cites this as the minimum needed for coherent multi-beams).
    pub fn commercial_80211ad() -> Self {
        Self {
            phase_bits: Some(2),
            amplitude: AmplitudeControl::OnOff { threshold_db: 20.0 },
        }
    }

    /// Quantizes a weight vector. The result is renormalized to the input's
    /// norm so quantization never changes radiated power, only its shape.
    // xtask-allow(hot-path-closure): quantization produces a fresh weight vector at beam-update time (maintenance cadence), not per slot
    pub fn quantize(&self, w: &BeamWeights) -> BeamWeights {
        let input_norm = w.norm();
        if input_norm == 0.0 {
            return w.clone();
        }
        let max_amp = w.as_slice().iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        let mut out: Vec<Complex64> = w
            .as_slice()
            .iter()
            .map(|&v| {
                let amp = self.quantize_amplitude(v.abs(), max_amp);
                if amp == 0.0 {
                    return Complex64::ZERO;
                }
                let phase = self.quantize_phase(v.arg());
                Complex64::from_polar(amp, phase)
            })
            .collect();
        // Restore the original TRP.
        let out_norm = mmwave_dsp::complex::norm(&out);
        if out_norm > 0.0 {
            let k = input_norm / out_norm;
            for v in out.iter_mut() {
                *v = v.scale(k);
            }
        }
        BeamWeights::from_vec(out)
    }

    /// Quantizes a single phase (radians) to the phase-shifter grid.
    pub fn quantize_phase(&self, phase: f64) -> f64 {
        match self.phase_bits {
            None => phase,
            Some(bits) => {
                let levels = (1u64 << bits) as f64;
                let step = 2.0 * PI / levels;
                (phase / step).round() * step
            }
        }
    }

    fn quantize_amplitude(&self, amp: f64, max_amp: f64) -> f64 {
        if amp == 0.0 || max_amp == 0.0 {
            return 0.0;
        }
        match self.amplitude {
            AmplitudeControl::Continuous => amp,
            AmplitudeControl::SteppedDb { step_db, range_db } => {
                let rel_db = db_from_amp(amp / max_amp);
                if rel_db < -range_db {
                    return 0.0;
                }
                let q_db = (rel_db / step_db).round() * step_db;
                max_amp * amp_from_db(q_db)
            }
            AmplitudeControl::OnOff { threshold_db } => {
                let rel_db = db_from_amp(amp / max_amp);
                if rel_db < -threshold_db {
                    0.0
                } else {
                    max_amp
                }
            }
        }
    }

    /// Worst-case phase error introduced by this quantizer, radians.
    pub fn max_phase_error(&self) -> f64 {
        match self.phase_bits {
            None => 0.0,
            Some(bits) => PI / (1u64 << bits) as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::ArrayGeometry;
    use crate::steering::single_beam;
    use mmwave_dsp::complex::c64;

    #[test]
    fn ideal_is_identity() {
        let w = single_beam(&ArrayGeometry::ula(8), 17.0);
        let q = Quantizer::ideal().quantize(&w);
        for (a, b) in q.as_slice().iter().zip(w.as_slice()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn quantization_preserves_trp() {
        let w = single_beam(&ArrayGeometry::ula(16), -33.0);
        for q in [Quantizer::paper_array(), Quantizer::commercial_80211ad()] {
            let out = q.quantize(&w);
            assert!((out.norm() - w.norm()).abs() < 1e-12, "{q:?}");
        }
    }

    #[test]
    fn phase_snaps_to_grid() {
        let q = Quantizer::paper_array();
        let step = 2.0 * PI / 64.0;
        let phase = q.quantize_phase(0.3);
        assert!((phase / step - (phase / step).round()).abs() < 1e-9);
        assert!((phase - 0.3).abs() <= step / 2.0 + 1e-12);
    }

    #[test]
    fn six_bit_phase_error_bounded() {
        let q = Quantizer::paper_array();
        assert!((q.max_phase_error() - PI / 64.0).abs() < 1e-12);
        for k in 0..100 {
            let phase = k as f64 * 0.0637 - PI;
            let err = (q.quantize_phase(phase) - phase).abs();
            assert!(err <= q.max_phase_error() + 1e-12);
        }
    }

    #[test]
    fn stepped_amplitude_mutes_below_range() {
        let q = Quantizer::paper_array();
        // one strong element, one 40 dB down (past the 27 dB range)
        let w = BeamWeights::from_vec(vec![c64(1.0, 0.0), c64(0.01, 0.0)]);
        let out = q.quantize(&w);
        assert_eq!(out.as_slice()[1], Complex64::ZERO);
        assert!(out.as_slice()[0].abs() > 0.0);
    }

    #[test]
    fn on_off_flattens_amplitudes() {
        let q = Quantizer::commercial_80211ad();
        let w = BeamWeights::from_vec(vec![c64(1.0, 0.0), c64(0.5, 0.0), c64(0.001, 0.0)]);
        let out = q.quantize(&w);
        // first two elements equal magnitude, third muted
        assert!((out.as_slice()[0].abs() - out.as_slice()[1].abs()).abs() < 1e-12);
        assert_eq!(out.as_slice()[2], Complex64::ZERO);
    }

    #[test]
    fn paper_array_beam_degradation_is_small() {
        // 6-bit phase quantization should cost well under 0.5 dB of gain.
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 24.0);
        let q = Quantizer::paper_array().quantize(&w);
        let a = crate::steering::steering_vector(&g, 24.0);
        let ideal = w.apply(&a).abs();
        let quant = q.apply(&a).abs();
        let loss_db = 20.0 * (ideal / quant).log10();
        assert!(loss_db < 0.5, "quantization loss {loss_db} dB");
    }

    #[test]
    fn two_bit_phase_still_forms_a_beam() {
        // Even 2-bit phase keeps most of the array gain (the paper argues
        // coherent multi-beams are feasible on commercial hardware).
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 10.0);
        let q = Quantizer::commercial_80211ad().quantize(&w);
        let a = crate::steering::steering_vector(&g, 10.0);
        let ideal = w.apply(&a).abs();
        let quant = q.apply(&a).abs();
        assert!(
            quant > 0.7 * ideal,
            "2-bit beam too weak: {quant} vs {ideal}"
        );
    }

    #[test]
    fn muted_vector_passes_through() {
        let w = BeamWeights::muted(4);
        let out = Quantizer::paper_array().quantize(&w);
        assert_eq!(out.norm(), 0.0);
    }
}
