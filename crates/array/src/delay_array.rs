//! Delay-phased-array architecture for wideband multi-beam operation
//! (paper §3.4, Eq. 15–17, Figs. 6–8).
//!
//! A conventional phased array applies only frequency-flat phase shifts, so
//! when a multi-beam rides two paths whose propagation delays differ by
//! Δτ, the two signal copies interfere with a frequency-dependent phase
//! `2πf·Δτ` — constructive at some subcarriers, destructive at others
//! (a comb across the band). The paper's fix (Fig. 6) is to use *one phased
//! array per beam*, joined by a network of true-time-delay lines into a
//! single RF chain; each delay line cancels the path-delay difference,
//! restoring a flat response at the full constructive-combining level.
//!
//! Eq. 17 also sketches a budget variant that splits one array into N/2
//! sub-arrays; [`DelayPhasedArray::new`] supports that too (pass the
//! sub-array geometry), at the cost of per-beam aperture.
//!
//! [`DelayPhasedArray::response`] evaluates the end-to-end baseband response
//! at a frequency offset from the carrier for an arbitrary set of paths —
//! this is what regenerates Figs. 7 and 8.

use crate::geometry::ArrayGeometry;
use crate::steering::steering_vector;
use mmwave_dsp::complex::Complex64;
use std::f64::consts::PI;

/// A propagation path as the delay-array analysis sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WidebandPath {
    /// Angle of departure, degrees.
    pub aod_deg: f64,
    /// Complex gain at the carrier frequency (includes the carrier-phase
    /// term `e^{-j2πf_c·τ}`).
    pub gain: Complex64,
    /// Absolute propagation delay, seconds.
    pub tau_s: f64,
}

/// One beam-forming array of the bank: steers one beam, with a
/// true-time-delay line and a constant phase/amplitude trim
/// (the "phase shifters + delay line" of Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubArrayBeam {
    /// Steering angle of this array's beam, degrees.
    pub angle_deg: f64,
    /// True-time delay inserted before this array, seconds (≥ 0:
    /// only causal delays are realizable).
    pub delay_s: f64,
    /// Constant phase trim, radians (aligns the beams at band center).
    pub phase_rad: f64,
    /// Amplitude trim (linear).
    pub amp: f64,
}

/// A bank of identical phased arrays — one per multi-beam component — fed
/// from a single RF chain through per-array delay lines (paper Fig. 6).
/// Total radiated power across the whole bank is normalized to 1.
#[derive(Clone, Debug)]
pub struct DelayPhasedArray {
    /// Geometry of each constituent array.
    per_beam_geom: ArrayGeometry,
    groups: Vec<SubArrayBeam>,
}

impl DelayPhasedArray {
    /// Creates a delay phased array: one `per_beam_geom` array per entry of
    /// `groups`. Panics when no groups are given.
    pub fn new(per_beam_geom: ArrayGeometry, groups: Vec<SubArrayBeam>) -> Self {
        assert!(!groups.is_empty(), "need at least one sub-array");
        Self {
            per_beam_geom,
            groups,
        }
    }

    /// Two-beam delay array matched to a two-path channel: the first array
    /// steers to `path1` with a delay compensating `Δτ = τ₂ − τ₁`
    /// (Eq. 17), the second steers to `path2`. Phase/amplitude trims
    /// implement the constructive combining of Eq. 10 (maximum-ratio over
    /// the two copies).
    pub fn two_beam_compensated(
        per_beam_geom: ArrayGeometry,
        path1: &WidebandPath,
        path2: &WidebandPath,
    ) -> Self {
        let delta_tau = path2.tau_s - path1.tau_s;
        let rel = path2.gain / path1.gain;
        Self::new(
            per_beam_geom,
            vec![
                SubArrayBeam {
                    angle_deg: path1.aod_deg,
                    // Delay the sub-array serving the *earlier* path so both
                    // copies arrive together (only non-negative delays are
                    // realizable in hardware).
                    delay_s: delta_tau.max(0.0),
                    phase_rad: 0.0,
                    amp: 1.0,
                },
                SubArrayBeam {
                    angle_deg: path2.aod_deg,
                    delay_s: (-delta_tau).max(0.0),
                    phase_rad: -rel.arg(),
                    amp: rel.abs().max(1e-6),
                },
            ],
        )
    }

    /// Same beams and trims but with all delay lines set to zero — the
    /// "multi-beam without delay compensation" baseline of Fig. 8.
    pub fn two_beam_uncompensated(
        per_beam_geom: ArrayGeometry,
        path1: &WidebandPath,
        path2: &WidebandPath,
    ) -> Self {
        let mut arr = Self::two_beam_compensated(per_beam_geom, path1, path2);
        for g in arr.groups.iter_mut() {
            g.delay_s = 0.0;
        }
        arr
    }

    /// Sub-array descriptors.
    pub fn groups(&self) -> &[SubArrayBeam] {
        &self.groups
    }

    /// Geometry of each constituent array.
    pub fn per_beam_geometry(&self) -> &ArrayGeometry {
        &self.per_beam_geom
    }

    /// Total element count across the bank.
    pub fn total_elements(&self) -> usize {
        self.per_beam_geom.num_elements() * self.groups.len()
    }

    /// Frequency-dependent element weights (concatenated across the bank)
    /// at baseband offset `freq_hz`. Normalized so that `‖w‖ = 1` at every
    /// frequency: the delay lines are lossless phase elements and the TRP
    /// budget covers the whole bank.
    pub fn weights_at(&self, freq_hz: f64) -> Vec<Complex64> {
        let per = self.per_beam_geom.num_elements();
        let mut w = vec![Complex64::ZERO; per * self.groups.len()];
        for (gi, grp) in self.groups.iter().enumerate() {
            let steer = steering_vector(&self.per_beam_geom, grp.angle_deg);
            let delay_phase = -2.0 * PI * freq_hz * grp.delay_s + grp.phase_rad;
            let coeff = Complex64::from_polar(grp.amp, delay_phase);
            for (i, s) in steer.iter().enumerate() {
                w[gi * per + i] = coeff * s.conj();
            }
        }
        mmwave_dsp::complex::normalize_in_place(&mut w);
        w
    }

    /// End-to-end baseband channel response at frequency offset `freq_hz`
    /// through the given paths:
    ///
    /// `H(f) = Σ_l γ_l · e^{-j2πf·τ_l} · Σ_g a_g(φ_l)ᵀ · w_g(f)`
    ///
    /// (every array of the bank illuminates every path — cross-lobe leakage
    /// between the banks is modeled, not assumed away).
    pub fn response(&self, paths: &[WidebandPath], freq_hz: f64) -> Complex64 {
        let per = self.per_beam_geom.num_elements();
        let w = self.weights_at(freq_hz);
        let mut h = Complex64::ZERO;
        for p in paths {
            let a = steering_vector(&self.per_beam_geom, p.aod_deg);
            let mut af = Complex64::ZERO;
            for gi in 0..self.groups.len() {
                for (i, s) in a.iter().enumerate() {
                    af += *s * w[gi * per + i];
                }
            }
            h += p.gain * Complex64::cis(-2.0 * PI * freq_hz * p.tau_s) * af;
        }
        h
    }

    /// Power response (linear) across a set of frequency offsets.
    pub fn power_response(&self, paths: &[WidebandPath], freqs_hz: &[f64]) -> Vec<f64> {
        freqs_hz
            .iter()
            .map(|&f| self.response(paths, f).norm_sqr())
            .collect()
    }
}

/// Conventional (phase-only) single beam response over frequency, for the
/// Fig. 7/8 baselines: steers one `geom` array at `aod_deg` and evaluates
/// the response through `paths`.
pub fn single_beam_response(
    geom: &ArrayGeometry,
    aod_deg: f64,
    paths: &[WidebandPath],
    freqs_hz: &[f64],
) -> Vec<f64> {
    let w = crate::steering::single_beam(geom, aod_deg);
    freqs_hz
        .iter()
        .map(|&f| {
            let mut h = Complex64::ZERO;
            for p in paths {
                let a = steering_vector(geom, p.aod_deg);
                let af = w.apply(&a);
                h += p.gain * Complex64::cis(-2.0 * PI * f * p.tau_s) * af;
            }
            h.norm_sqr()
        })
        .collect()
}

/// Phase-only constructive multi-beam response over frequency (paper
/// Eq. 10 weights on a single `geom` array, no delay lines) — the
/// "non-optimized mmReliable" curve of Fig. 8.
pub fn phase_only_multibeam_response(
    geom: &ArrayGeometry,
    path1: &WidebandPath,
    path2: &WidebandPath,
    freqs_hz: &[f64],
) -> Vec<f64> {
    let rel = path2.gain / path1.gain;
    let mb =
        crate::multibeam::MultiBeam::two_beam(path1.aod_deg, path2.aod_deg, rel.abs(), rel.arg());
    let w = mb.weights(geom);
    freqs_hz
        .iter()
        .map(|&f| {
            let mut h = Complex64::ZERO;
            for p in [path1, path2] {
                let a = steering_vector(geom, p.aod_deg);
                let af = w.apply(&a);
                h += p.gain * Complex64::cis(-2.0 * PI * f * p.tau_s) * af;
            }
            h.norm_sqr()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::c64;
    use mmwave_dsp::stats;

    fn freqs_400mhz(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| -200e6 + 400e6 * i as f64 / (n - 1) as f64)
            .collect()
    }

    fn two_paths(delta_tau_s: f64) -> (WidebandPath, WidebandPath) {
        (
            WidebandPath {
                aod_deg: 0.0,
                gain: c64(1.0, 0.0),
                tau_s: 20e-9,
            },
            WidebandPath {
                aod_deg: 30.0,
                gain: c64(0.9, 0.0),
                tau_s: 20e-9 + delta_tau_s,
            },
        )
    }

    /// Flatness metric: max-to-min power ratio in dB over the band.
    fn ripple_db(p: &[f64]) -> f64 {
        10.0 * (stats::max(p) / stats::min(p)).log10()
    }

    #[test]
    fn single_path_single_beam_is_flat() {
        let g = ArrayGeometry::ula(16);
        let p = WidebandPath {
            aod_deg: 10.0,
            gain: c64(1.0, 0.0),
            tau_s: 30e-9,
        };
        let resp = single_beam_response(&g, 10.0, &[p], &freqs_400mhz(101));
        assert!(ripple_db(&resp) < 1e-9, "single path must be flat");
    }

    #[test]
    fn phase_only_multibeam_has_comb() {
        // Δτ = 5 ns over 400 MHz → interference comb: deep ripple.
        let g = ArrayGeometry::ula(16);
        let (p1, p2) = two_paths(5e-9);
        let resp = phase_only_multibeam_response(&g, &p1, &p2, &freqs_400mhz(201));
        assert!(
            ripple_db(&resp) > 10.0,
            "expected deep comb, got {} dB",
            ripple_db(&resp)
        );
    }

    #[test]
    fn uncompensated_bank_has_comb() {
        let g = ArrayGeometry::ula(16);
        let (p1, p2) = two_paths(5e-9);
        let arr = DelayPhasedArray::two_beam_uncompensated(g, &p1, &p2);
        let resp = arr.power_response(&[p1, p2], &freqs_400mhz(201));
        assert!(
            ripple_db(&resp) > 10.0,
            "expected deep comb, got {} dB",
            ripple_db(&resp)
        );
    }

    #[test]
    fn compensated_two_path_is_flat() {
        let g = ArrayGeometry::ula(16);
        for dtau in [5e-9, 10e-9] {
            let (p1, p2) = two_paths(dtau);
            let arr = DelayPhasedArray::two_beam_compensated(g, &p1, &p2);
            let resp = arr.power_response(&[p1, p2], &freqs_400mhz(201));
            assert!(
                ripple_db(&resp) < 0.5,
                "Δτ={dtau}: ripple {} dB",
                ripple_db(&resp)
            );
        }
    }

    #[test]
    fn compensated_beats_single_beam_everywhere() {
        // One array per beam: worst-case compensated response still beats a
        // single-beam array of the same per-beam size on its best path.
        let g = ArrayGeometry::ula(16);
        let (p1, p2) = two_paths(10e-9);
        let freqs = freqs_400mhz(101);
        let arr = DelayPhasedArray::two_beam_compensated(g, &p1, &p2);
        let multi = arr.power_response(&[p1, p2], &freqs);
        let single = single_beam_response(&g, 0.0, &[p1, p2], &freqs);
        assert!(
            stats::min(&multi) > stats::mean(&single),
            "multi min {} vs single mean {}",
            stats::min(&multi),
            stats::mean(&single)
        );
    }

    #[test]
    fn compensated_matches_constructive_peak() {
        // Flat level ≈ peak of the phase-only comb (full constructive gain,
        // paper Fig. 8 shape).
        let g = ArrayGeometry::ula(16);
        let (p1, p2) = two_paths(5e-9);
        let freqs = freqs_400mhz(401);
        let arr = DelayPhasedArray::two_beam_compensated(g, &p1, &p2);
        let flat = arr.power_response(&[p1, p2], &freqs);
        let comb = arr.clone().power_response(&[p1, p2], &freqs); // same bank
        let uncomp =
            DelayPhasedArray::two_beam_uncompensated(g, &p1, &p2).power_response(&[p1, p2], &freqs);
        let flat_level = stats::mean(&flat);
        let comb_peak = stats::max(&uncomp);
        assert!(
            (10.0 * (flat_level / comb_peak).log10()).abs() < 0.5,
            "flat {flat_level} vs comb peak {comb_peak}"
        );
        assert!(stats::max(&comb) <= flat_level * 1.01);
    }

    #[test]
    fn weights_unit_norm_at_all_frequencies() {
        let g = ArrayGeometry::ula(8);
        let (p1, p2) = two_paths(5e-9);
        let arr = DelayPhasedArray::two_beam_compensated(g, &p1, &p2);
        assert_eq!(arr.total_elements(), 16);
        for f in [-200e6, -37e6, 0.0, 112e6, 200e6] {
            let w = arr.weights_at(f);
            assert!((mmwave_dsp::complex::norm(&w) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn delays_are_non_negative_when_path_order_flips() {
        let g = ArrayGeometry::ula(16);
        // Path 2 earlier than path 1 — compensation must flip to group 2.
        let p1 = WidebandPath {
            aod_deg: 0.0,
            gain: c64(1.0, 0.0),
            tau_s: 30e-9,
        };
        // 30° is a pattern null of the 16-element array steered to 0°, so
        // cross-lobe leakage (which adds a small physical ripple at other
        // separations) vanishes and the compensated response is clean.
        let p2 = WidebandPath {
            aod_deg: 30.0,
            gain: c64(0.5, 0.0),
            tau_s: 22e-9,
        };
        let arr = DelayPhasedArray::two_beam_compensated(g, &p1, &p2);
        assert!(arr.groups().iter().all(|grp| grp.delay_s >= 0.0));
        let resp = arr.power_response(&[p1, p2], &freqs_400mhz(101));
        assert!(ripple_db(&resp) < 0.5, "ripple {} dB", ripple_db(&resp));
    }

    #[test]
    #[should_panic(expected = "at least one sub-array")]
    fn needs_groups() {
        DelayPhasedArray::new(ArrayGeometry::ula(8), Vec::new());
    }
}
