//! Far-field beam patterns and their inversion.
//!
//! The tracking algorithm (paper §4.2, Eq. 18–20) works by reading a change
//! in per-beam received power and inverting the transmit beam pattern
//! `G_T(θ)` to recover the angular deviation `φ_k(t)`. This module provides:
//!
//! - the exact array factor of any weight vector ([`array_factor`]),
//! - the closed-form normalized ULA pattern (the Dirichlet kernel — the
//!   paper's Eq. 20 up to its typo; we use the standard
//!   `sin(Nψ/2)/(N·sin(ψ/2))` form),
//! - main-lobe metrics (HPBW, first null),
//! - the inverse-gain lookup `ΔdB → |Δθ|` used by the tracker.

use crate::geometry::ArrayGeometry;
use crate::steering::steering_vector;
use crate::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::db_from_pow;
use std::f64::consts::PI;

/// Complex array factor of weights `w` observed at departure angle
/// `theta_deg`: `AF(θ) = a(θ)ᵀ·w`.
pub fn array_factor(geom: &ArrayGeometry, w: &BeamWeights, theta_deg: f64) -> Complex64 {
    let a = steering_vector(geom, theta_deg);
    w.apply(&a)
}

/// Power gain (dB) of `w` at angle `theta_deg`: `10·log₁₀|AF(θ)|²`.
pub fn power_gain_db(geom: &ArrayGeometry, w: &BeamWeights, theta_deg: f64) -> f64 {
    db_from_pow(array_factor(geom, w, theta_deg).norm_sqr().max(1e-30))
}

/// Samples the power pattern (linear) across `angles_deg`.
pub fn pattern_cut(geom: &ArrayGeometry, w: &BeamWeights, angles_deg: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(angles_deg.len());
    pattern_cut_into(geom, w, angles_deg, &mut out);
    out
}

/// Write-into variant of [`pattern_cut`]: clears `out` and fills it with
/// one power sample per angle. One steering scratch is reused across all
/// angles (one allocation per cut instead of one per angle).
pub fn pattern_cut_into(
    geom: &ArrayGeometry,
    w: &BeamWeights,
    angles_deg: &[f64],
    out: &mut Vec<f64>,
) {
    out.clear();
    let mut a: Vec<Complex64> = Vec::with_capacity(geom.num_elements());
    out.extend(angles_deg.iter().map(|&t| {
        crate::steering::steering_vector_into(geom, t, &mut a);
        w.apply(&a).norm_sqr()
    }));
}

/// Normalized ULA amplitude pattern (Dirichlet kernel) for an `n`-element
/// array with `spacing_wl` spacing, steered to `steer_deg`, observed at
/// `theta_deg`. Returns a value in `[0, 1]` with 1 at the steering angle.
///
/// This is the closed form behind the paper's Eq. 20 (which the tracking
/// algorithm inverts); it agrees with [`array_factor`] of a conjugate beam.
pub fn ula_gain_rel(n: usize, spacing_wl: f64, steer_deg: f64, theta_deg: f64) -> f64 {
    assert!(n > 0);
    let psi = 2.0 * PI * spacing_wl * (theta_deg.to_radians().sin() - steer_deg.to_radians().sin());
    dirichlet(n, psi).abs()
}

/// `sin(Nψ/2) / (N·sin(ψ/2))`, the normalized aperiodic array factor.
fn dirichlet(n: usize, psi: f64) -> f64 {
    let half = psi / 2.0;
    if half.sin().abs() < 1e-12 {
        // ψ near a multiple of 2π: lobe peak.
        1.0
    } else {
        (n as f64 * half).sin() / (n as f64 * half.sin())
    }
}

/// Half-power (−3 dB) beamwidth in degrees of a conjugate beam steered to
/// `steer_deg`, found numerically on the true pattern.
pub fn hpbw_deg(geom: &ArrayGeometry, steer_deg: f64) -> f64 {
    let n = geom.azimuth_elements();
    let d = geom.spacing_wl();
    let target = std::f64::consts::FRAC_1_SQRT_2; // amplitude at −3 dB
    let right = offset_for_rel_gain(n, d, steer_deg, target, 1.0);
    let left = offset_for_rel_gain(n, d, steer_deg, target, -1.0);
    right + left
}

/// Offset (degrees, positive) from the steering angle to the first pattern
/// null on the `sign` side.
pub fn first_null_offset_deg(geom: &ArrayGeometry, steer_deg: f64, sign: f64) -> f64 {
    let n = geom.azimuth_elements() as f64;
    let d = geom.spacing_wl();
    // Null when ψ·N/2 = π → sinθ = sin(steer) ± 1/(N·d)
    let s = steer_deg.to_radians().sin() + sign.signum() / (n * d);
    if s.abs() > 1.0 {
        return 90.0 - steer_deg.abs();
    }
    (s.asin().to_degrees() - steer_deg).abs()
}

/// Inverse-gain lookup: given a measured power drop `drop_db` (positive dB)
/// relative to the beam peak, returns the angular deviation `|Δθ|` in
/// degrees that explains it, assuming the user stayed within the main lobe.
/// Returns `None` if the drop exceeds the main-lobe dynamic range (deviation
/// past the first null can't be inverted unambiguously).
///
/// This is the `G_T⁻¹` of the paper's Eq. 19: the sign of Δθ is inherently
/// ambiguous and is resolved by the extra probe (§4.2).
pub fn invert_gain_drop(geom: &ArrayGeometry, steer_deg: f64, drop_db: f64) -> Option<f64> {
    if drop_db <= 0.0 {
        return Some(0.0);
    }
    let n = geom.azimuth_elements();
    let d = geom.spacing_wl();
    // Target relative amplitude: a power drop of `drop_db` corresponds to
    // an amplitude ratio of 10^(-drop_db/20).
    let target = mmwave_dsp::units::amp_from_db(-drop_db);
    // Inversion is only trusted over the practically-monotone part of the
    // main lobe (out to 95% of the first null, ≈25 dB of dynamic range for
    // an 8-element array); deeper fades are blockage, not misalignment.
    let null = first_null_offset_deg(geom, steer_deg, 1.0);
    let g_at_null_edge = ula_gain_rel(n, d, steer_deg, steer_deg + null * 0.95);
    if target < g_at_null_edge {
        return None; // drop too deep to attribute to main-lobe misalignment
    }
    Some(offset_for_rel_gain(n, d, steer_deg, target, 1.0))
}

/// Finds the offset (degrees ≥ 0) at which the relative amplitude pattern
/// first decays to `target` on the `sign` side, by bisection over the main
/// lobe.
fn offset_for_rel_gain(n: usize, spacing_wl: f64, steer_deg: f64, target: f64, sign: f64) -> f64 {
    let geom_null = {
        let nf = n as f64;
        let s = steer_deg.to_radians().sin() + sign.signum() / (nf * spacing_wl);
        if s.abs() > 1.0 {
            (90.0 * sign.signum() - steer_deg).abs()
        } else {
            (s.asin().to_degrees() - steer_deg).abs()
        }
    };
    let mut lo = 0.0f64;
    let mut hi = geom_null.max(1e-6);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let g = ula_gain_rel(n, spacing_wl, steer_deg, steer_deg + sign.signum() * mid);
        if g > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steering::single_beam;

    #[test]
    fn dirichlet_peak_is_one() {
        assert_eq!(dirichlet(8, 0.0), 1.0);
        assert!((ula_gain_rel(8, 0.5, 20.0, 20.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closed_form_matches_true_array_factor() {
        let g = ArrayGeometry::ula(8);
        let steer = 15.0;
        let w = single_beam(&g, steer);
        let peak = array_factor(&g, &w, steer).abs();
        for theta in [-40.0, -10.0, 0.0, 10.0, 15.0, 18.0, 30.0, 55.0] {
            let exact = array_factor(&g, &w, theta).abs() / peak;
            let closed = ula_gain_rel(8, 0.5, steer, theta);
            assert!(
                (exact - closed).abs() < 1e-9,
                "θ={theta}: exact {exact} vs closed {closed}"
            );
        }
    }

    #[test]
    fn pattern_peak_at_steering_angle() {
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 30.0);
        let angles: Vec<f64> = (-60..=60).map(|a| a as f64).collect();
        let cut = pattern_cut(&g, &w, &angles);
        let peak_idx = cut
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(angles[peak_idx], 30.0);
    }

    #[test]
    fn peak_power_gain_is_n() {
        // Unit-TRP conjugate beam: |AF|² = N at the steering angle.
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 0.0);
        let gain = array_factor(&g, &w, 0.0).norm_sqr();
        assert!((gain - 8.0).abs() < 1e-9);
        assert!((power_gain_db(&g, &w, 0.0) - db_from_pow(8.0)).abs() < 1e-9);
    }

    #[test]
    fn hpbw_shrinks_with_array_size() {
        let b8 = hpbw_deg(&ArrayGeometry::ula(8), 0.0);
        let b16 = hpbw_deg(&ArrayGeometry::ula(16), 0.0);
        let b64 = hpbw_deg(&ArrayGeometry::ula(64), 0.0);
        assert!(b8 > b16 && b16 > b64);
        // Rule of thumb for λ/2 ULA: HPBW ≈ 102°/N
        assert!((b8 - 102.0 / 8.0).abs() < 2.0, "hpbw8 {b8}");
    }

    #[test]
    fn first_null_matches_theory() {
        // N=8, d=λ/2 at broadside: null at asin(1/(8·0.5)) = asin(0.25) ≈ 14.48°
        let g = ArrayGeometry::ula(8);
        let null = first_null_offset_deg(&g, 0.0, 1.0);
        assert!((null - 14.477).abs() < 0.01, "null {null}");
        // The pattern really is tiny there.
        let gain = ula_gain_rel(8, 0.5, 0.0, null);
        assert!(gain < 1e-6);
    }

    #[test]
    fn invert_gain_drop_round_trip() {
        let g = ArrayGeometry::ula(8);
        for steer in [0.0, 20.0] {
            for dtheta in [1.0, 3.0, 6.0, 10.0] {
                let gain = ula_gain_rel(8, 0.5, steer, steer + dtheta);
                let drop_db = -db_from_pow(gain * gain);
                let est = invert_gain_drop(&g, steer, drop_db).unwrap();
                assert!(
                    (est - dtheta).abs() < 0.05,
                    "steer {steer} Δθ {dtheta}: est {est}"
                );
            }
        }
    }

    #[test]
    fn invert_gain_drop_zero_drop() {
        let g = ArrayGeometry::ula(8);
        assert_eq!(invert_gain_drop(&g, 0.0, 0.0), Some(0.0));
        assert_eq!(invert_gain_drop(&g, 0.0, -3.0), Some(0.0));
    }

    #[test]
    fn invert_gain_drop_rejects_beyond_null() {
        let g = ArrayGeometry::ula(8);
        // 60 dB drop is past anything the main lobe can explain.
        assert_eq!(invert_gain_drop(&g, 0.0, 60.0), None);
    }

    #[test]
    fn paper_motivating_numbers() {
        // §4.2: "a mere angular movement of 14° would cause a 20 dB loss".
        // For the 8-element azimuth cut, 14° is essentially at the first
        // null, so the loss must exceed 20 dB.
        let gain = ula_gain_rel(8, 0.5, 0.0, 14.0);
        let loss_db = -db_from_pow(gain * gain);
        assert!(loss_db > 20.0, "loss at 14°: {loss_db} dB");
    }
}
