//! Single-beam codebooks for beam training.
//!
//! Practical systems program a limited set of angular directions
//! (64–1024, §5.1) into the beamforming FPGA; beam training scans this
//! codebook via SSB probes. The paper performs 120° scans (§3.2's
//! measurement study and §6's experiments), which
//! [`Codebook::paper_scan`] mirrors.

use crate::geometry::ArrayGeometry;
use crate::steering::single_beam;
use crate::weights::BeamWeights;

/// A set of single-beam weight vectors at fixed angles.
#[derive(Clone, Debug)]
pub struct Codebook {
    angles_deg: Vec<f64>,
    beams: Vec<BeamWeights>,
}

impl Codebook {
    /// Uniformly spaced beams across `[-span_deg/2, +span_deg/2]`.
    /// Panics if `n_beams == 0` or `span_deg <= 0`.
    // xtask-allow(hot-path-closure): codebook construction happens once per acquisition scan, not per slot; the beams are then reused read-only
    pub fn uniform(geom: &ArrayGeometry, n_beams: usize, span_deg: f64) -> Self {
        assert!(n_beams > 0, "codebook needs at least one beam");
        assert!(span_deg > 0.0, "span must be positive");
        let angles_deg: Vec<f64> = if n_beams == 1 {
            vec![0.0]
        } else {
            (0..n_beams)
                .map(|i| -span_deg / 2.0 + span_deg * i as f64 / (n_beams - 1) as f64)
                .collect()
        };
        let beams = angles_deg.iter().map(|&a| single_beam(geom, a)).collect();
        Self { angles_deg, beams }
    }

    /// The paper's default training scan: 64 beams over 120°.
    pub fn paper_scan(geom: &ArrayGeometry) -> Self {
        Self::uniform(geom, 64, 120.0)
    }

    /// Number of beams.
    pub fn len(&self) -> usize {
        self.beams.len()
    }

    /// True if the codebook has no beams (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.beams.is_empty()
    }

    /// Steering angle (degrees) of beam `i`.
    pub fn angle_deg(&self, i: usize) -> f64 {
        debug_assert!(i < self.angles_deg.len());
        self.angles_deg[i]
    }

    /// Weights of beam `i`.
    pub fn beam(&self, i: usize) -> &BeamWeights {
        debug_assert!(i < self.beams.len());
        &self.beams[i]
    }

    /// All steering angles.
    pub fn angles(&self) -> &[f64] {
        &self.angles_deg
    }

    /// Iterates `(angle_deg, weights)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &BeamWeights)> {
        self.angles_deg.iter().copied().zip(self.beams.iter())
    }

    /// Index of the codebook beam closest to `angle_deg`.
    pub fn nearest(&self, angle_deg: f64) -> usize {
        self.angles_deg
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (*a - angle_deg).abs().total_cmp(&(*b - angle_deg).abs()))
            .map(|(i, _)| i)
            .expect("codebook is non-empty")
    }

    /// Angular spacing between adjacent beams (degrees); 0 for a single beam.
    pub fn beam_spacing_deg(&self) -> f64 {
        if self.angles_deg.len() < 2 {
            0.0
        } else {
            self.angles_deg[1] - self.angles_deg[0]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spans_requested_range() {
        let g = ArrayGeometry::ula(8);
        let cb = Codebook::uniform(&g, 5, 120.0);
        assert_eq!(cb.len(), 5);
        assert_eq!(cb.angle_deg(0), -60.0);
        assert_eq!(cb.angle_deg(4), 60.0);
        assert_eq!(cb.angle_deg(2), 0.0);
        assert!((cb.beam_spacing_deg() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scan_dimensions() {
        let cb = Codebook::paper_scan(&ArrayGeometry::ula(8));
        assert_eq!(cb.len(), 64);
        assert_eq!(cb.angle_deg(0), -60.0);
        assert_eq!(cb.angle_deg(63), 60.0);
    }

    #[test]
    fn beams_are_unit_norm() {
        let cb = Codebook::uniform(&ArrayGeometry::ula(16), 9, 90.0);
        for (_, w) in cb.iter() {
            assert!((w.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_picks_closest() {
        let cb = Codebook::uniform(&ArrayGeometry::ula(8), 5, 120.0);
        assert_eq!(cb.nearest(-59.0), 0);
        assert_eq!(cb.nearest(13.0), 2);
        assert_eq!(cb.nearest(16.0), 3);
        assert_eq!(cb.nearest(100.0), 4);
    }

    #[test]
    fn single_beam_codebook() {
        let cb = Codebook::uniform(&ArrayGeometry::ula(8), 1, 120.0);
        assert_eq!(cb.len(), 1);
        assert_eq!(cb.angle_deg(0), 0.0);
        assert_eq!(cb.beam_spacing_deg(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one beam")]
    fn rejects_empty() {
        Codebook::uniform(&ArrayGeometry::ula(8), 0, 120.0);
    }
}
