//! Array element layouts.
//!
//! The paper's testbed is an 8×8 uniform planar array with λ/2 spacing that
//! beamforms only in azimuth (all elevation weights identical, §5.1). That
//! makes its azimuth behaviour identical to an 8-element uniform linear
//! array with 8× the element count feeding power. We model both:
//! [`ArrayGeometry::Ula`] for azimuth-cut analysis and
//! [`ArrayGeometry::Upa`] when the planar structure matters.

/// Geometry of a phased array. Spacing is expressed in wavelengths
/// (the testbed uses `d = λ/2`, i.e. `0.5`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrayGeometry {
    /// Uniform linear array along the azimuth axis.
    Ula {
        /// Number of elements.
        n: usize,
        /// Element spacing in wavelengths.
        spacing_wl: f64,
    },
    /// Uniform planar array; azimuth steering across `nx`, elevation across
    /// `ny`.
    Upa {
        /// Elements along the azimuth axis.
        nx: usize,
        /// Elements along the elevation axis.
        ny: usize,
        /// Element spacing in wavelengths (same on both axes).
        spacing_wl: f64,
    },
}

impl ArrayGeometry {
    /// Standard λ/2-spaced ULA with `n` elements.
    pub fn ula(n: usize) -> Self {
        assert!(n > 0, "array needs at least one element");
        ArrayGeometry::Ula { n, spacing_wl: 0.5 }
    }

    /// The paper's 8×8 λ/2 planar array.
    pub fn paper_8x8() -> Self {
        ArrayGeometry::Upa {
            nx: 8,
            ny: 8,
            spacing_wl: 0.5,
        }
    }

    /// λ/2-spaced UPA.
    pub fn upa(nx: usize, ny: usize) -> Self {
        assert!(
            nx > 0 && ny > 0,
            "array needs at least one element per axis"
        );
        ArrayGeometry::Upa {
            nx,
            ny,
            spacing_wl: 0.5,
        }
    }

    /// Total number of elements.
    pub fn num_elements(&self) -> usize {
        match *self {
            ArrayGeometry::Ula { n, .. } => n,
            ArrayGeometry::Upa { nx, ny, .. } => nx * ny,
        }
    }

    /// Number of elements along the azimuth axis (what determines azimuth
    /// beamwidth).
    pub fn azimuth_elements(&self) -> usize {
        match *self {
            ArrayGeometry::Ula { n, .. } => n,
            ArrayGeometry::Upa { nx, .. } => nx,
        }
    }

    /// Element spacing in wavelengths.
    pub fn spacing_wl(&self) -> f64 {
        match *self {
            ArrayGeometry::Ula { spacing_wl, .. } | ArrayGeometry::Upa { spacing_wl, .. } => {
                spacing_wl
            }
        }
    }

    /// Position of element `i` along the azimuth axis, in wavelengths.
    /// For a UPA, elements are indexed row-major (azimuth fastest).
    pub fn azimuth_position_wl(&self, i: usize) -> f64 {
        match *self {
            ArrayGeometry::Ula { n, spacing_wl } => {
                assert!(i < n, "element index out of range");
                i as f64 * spacing_wl
            }
            ArrayGeometry::Upa { nx, ny, spacing_wl } => {
                assert!(i < nx * ny, "element index out of range");
                (i % nx) as f64 * spacing_wl
            }
        }
    }

    /// Position of element `i` along the elevation axis, in wavelengths
    /// (always 0 for a ULA).
    pub fn elevation_position_wl(&self, i: usize) -> f64 {
        match *self {
            ArrayGeometry::Ula { n, .. } => {
                assert!(i < n, "element index out of range");
                0.0
            }
            ArrayGeometry::Upa { nx, ny, spacing_wl } => {
                assert!(i < nx * ny, "element index out of range");
                (i / nx) as f64 * spacing_wl
            }
        }
    }

    /// Azimuth-cut equivalent ULA (the view the beam-management algorithms
    /// operate on; the paper only steers azimuth).
    pub fn azimuth_cut(&self) -> ArrayGeometry {
        match *self {
            ula @ ArrayGeometry::Ula { .. } => ula,
            ArrayGeometry::Upa { nx, spacing_wl, .. } => ArrayGeometry::Ula { n: nx, spacing_wl },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ula_positions() {
        let g = ArrayGeometry::ula(4);
        assert_eq!(g.num_elements(), 4);
        assert_eq!(g.azimuth_elements(), 4);
        assert_eq!(g.azimuth_position_wl(0), 0.0);
        assert_eq!(g.azimuth_position_wl(3), 1.5);
        assert_eq!(g.elevation_position_wl(3), 0.0);
    }

    #[test]
    fn upa_positions_row_major() {
        let g = ArrayGeometry::paper_8x8();
        assert_eq!(g.num_elements(), 64);
        assert_eq!(g.azimuth_elements(), 8);
        // element 9 = row 1, col 1
        assert_eq!(g.azimuth_position_wl(9), 0.5);
        assert_eq!(g.elevation_position_wl(9), 0.5);
        // element 7 = row 0, col 7
        assert_eq!(g.azimuth_position_wl(7), 3.5);
        assert_eq!(g.elevation_position_wl(7), 0.0);
    }

    #[test]
    fn azimuth_cut_of_upa_is_ula() {
        let g = ArrayGeometry::paper_8x8().azimuth_cut();
        assert_eq!(
            g,
            ArrayGeometry::Ula {
                n: 8,
                spacing_wl: 0.5
            }
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_bounds_checked() {
        ArrayGeometry::ula(4).azimuth_position_wl(4);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn rejects_empty_array() {
        ArrayGeometry::ula(0);
    }
}
