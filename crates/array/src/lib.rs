//! # mmwave-array
//!
//! Software model of the paper's phased-array front end: an 8×8 (64-element)
//! 28 GHz array driven by a single RF chain, with 6-bit phase shifters and
//! 27 dB of per-element gain control (§5.1 of the paper).
//!
//! The model exposes exactly what the paper's algorithms see:
//!
//! - [`geometry::ArrayGeometry`] — uniform linear / planar element layouts,
//! - [`steering`] — steering vectors `a(φ)` and conjugate single-beam
//!   weights (paper Eq. 5–6),
//! - [`weights::BeamWeights`] — unit-norm complex weight vectors (TRP
//!   conservation, `‖w‖ = 1`),
//! - [`quantize::Quantizer`] — hardware phase/amplitude quantization,
//! - [`pattern`] — far-field array factor, beam-pattern metrics, and the
//!   inverse-gain lookup used by the tracking algorithm (Eq. 19–20),
//! - [`codebook`] — single-beam codebooks used for beam training,
//! - [`multibeam`] — constructive multi-beam synthesis (Eq. 10 / Eq. 29),
//! - [`delay_array`] — the delay-phased-array architecture for wideband
//!   multi-beam operation (§3.4, Eq. 17),
//! - [`coupling`] — static mutual-coupling matrix for the hardware
//!   impairment layer (`w ← C·w` on radiated weights).

#![warn(missing_docs)]
pub mod codebook;
pub mod coupling;
pub mod delay_array;
pub mod geometry;
pub mod multibeam;
pub mod pattern;
pub mod quantize;
pub mod steering;
pub mod weights;

pub use geometry::ArrayGeometry;
pub use multibeam::{BeamComponent, MultiBeam};
pub use quantize::Quantizer;
pub use weights::BeamWeights;
