//! Static per-element mutual coupling between array elements.
//!
//! Neighbouring elements of a dense half-wavelength array are not isolated:
//! energy fed to one element re-radiates from its neighbours, so the weight
//! vector actually radiated is `C·w` for a coupling matrix `C` with unit
//! diagonal and small off-diagonal terms that decay with element spacing.
//! We use the classic distance-decay model (cf. arXiv:1803.05665): the
//! coupling between elements at distance `d` wavelengths is
//!
//! ```text
//! C[i][j] = c0 · (d_min / d) · e^{-j 2π d},   d ≤ radius
//! ```
//!
//! where `c0` is the nearest-neighbour coupling magnitude (e.g. `-20 dB`)
//! and `d_min` the nearest-neighbour spacing. Entries beyond `radius`
//! wavelengths are negligible and dropped, leaving a sparse matrix that is
//! precomputed once at construction and applied allocation-free per slot.

use crate::geometry::ArrayGeometry;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::units::amp_from_db;
use mmwave_hotpath::hot_path;

/// Maximum array size the in-place coupling kernel supports (the paper's
/// array is 64 elements; the stack scratch in the impairment layer matches).
pub const MAX_COUPLED_ELEMENTS: usize = 256;

/// Sparse precomputed mutual-coupling matrix `C = I + off-diagonal terms`.
#[derive(Clone, Debug, PartialEq)]
pub struct MutualCoupling {
    n: usize,
    /// Off-diagonal entries `(i, j, C[i][j])`, `i ≠ j`.
    entries: Vec<(u32, u32, Complex64)>,
}

impl MutualCoupling {
    /// Builds the coupling matrix for `geom` with nearest-neighbour
    /// coupling `coupling_db` (magnitude, dB — typically negative) and a
    /// neighbourhood cut-off of `radius_wl` wavelengths.
    pub fn from_geometry(geom: &ArrayGeometry, coupling_db: f64, radius_wl: f64) -> Self {
        let n = geom.num_elements();
        assert!(
            n <= MAX_COUPLED_ELEMENTS,
            "coupling kernel supports at most {MAX_COUPLED_ELEMENTS} elements"
        );
        let c0 = amp_from_db(coupling_db);
        let d_min = geom.spacing_wl().max(1e-9);
        let mut entries = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let dx = geom.azimuth_position_wl(i) - geom.azimuth_position_wl(j);
                let dz = geom.elevation_position_wl(i) - geom.elevation_position_wl(j);
                let d = (dx * dx + dz * dz).sqrt();
                if d > radius_wl || d <= 0.0 {
                    continue;
                }
                let mag = c0 * d_min / d;
                let phase = -std::f64::consts::TAU * d;
                entries.push((i as u32, j as u32, Complex64::from_polar(mag, phase)));
            }
        }
        Self { n, entries }
    }

    /// Number of array elements the matrix was built for.
    pub fn num_elements(&self) -> usize {
        self.n
    }

    /// Number of retained off-diagonal entries.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Applies `w ← C·w` in place using the caller-provided scratch buffer
    /// (`scratch.len() ≥ w.len()`). Allocation-free: the entry list is
    /// precomputed and the scratch is reused across slots.
    #[hot_path]
    pub fn apply_in_place(&self, w: &mut [Complex64], scratch: &mut [Complex64]) {
        debug_assert_eq!(w.len(), self.n);
        let scratch = &mut scratch[..w.len()];
        scratch.copy_from_slice(w);
        for &(i, j, c) in &self.entries {
            w[i as usize] += c * scratch[j as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::c64;

    #[test]
    fn identity_when_coupling_vanishes() {
        let geom = ArrayGeometry::paper_8x8();
        let cpl = MutualCoupling::from_geometry(&geom, -300.0, 1.0);
        let mut w: Vec<Complex64> = (0..64)
            .map(|i| c64((i as f64 * 0.1).cos(), (i as f64 * 0.1).sin()))
            .collect();
        let orig = w.clone();
        let mut scratch = vec![Complex64::ZERO; 64];
        cpl.apply_in_place(&mut w, &mut scratch);
        for (a, b) in w.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn interior_elements_couple_to_neighbours() {
        let geom = ArrayGeometry::paper_8x8();
        let cpl = MutualCoupling::from_geometry(&geom, -20.0, 1.0);
        // Element 9 = (1,1) interior: 4 edge + 4 diagonal neighbours within
        // 1 λ at 0.5 λ spacing (plus the straight ±2 neighbours at exactly
        // 1.0 λ). The entry list must contain its 4 nearest neighbours.
        let nearest: Vec<_> = cpl
            .entries
            .iter()
            .filter(|(i, _, c)| *i == 9 && c.abs() > 0.09)
            .collect();
        assert_eq!(nearest.len(), 4, "4 nearest neighbours at full strength");
        // Perturbation magnitude of a uniform excitation is small but nonzero.
        let mut w = vec![c64(0.125, 0.0); 64];
        let mut scratch = vec![Complex64::ZERO; 64];
        cpl.apply_in_place(&mut w, &mut scratch);
        let delta: f64 = w.iter().map(|x| (*x - c64(0.125, 0.0)).abs()).sum::<f64>() / 64.0;
        assert!(
            delta > 1e-4 && delta < 0.125,
            "gentle perturbation, got {delta}"
        );
    }

    #[test]
    fn coupling_strength_scales_with_db() {
        let geom = ArrayGeometry::ula(16);
        let weak = MutualCoupling::from_geometry(&geom, -30.0, 1.0);
        let strong = MutualCoupling::from_geometry(&geom, -10.0, 1.0);
        let mut w_weak = vec![c64(0.25, 0.0); 16];
        let mut w_strong = w_weak.clone();
        let mut scratch = vec![Complex64::ZERO; 16];
        weak.apply_in_place(&mut w_weak, &mut scratch);
        strong.apply_in_place(&mut w_strong, &mut scratch);
        let d = |w: &[Complex64]| w.iter().map(|x| (*x - c64(0.25, 0.0)).abs()).sum::<f64>();
        assert!(d(&w_strong) > 5.0 * d(&w_weak));
    }

    #[test]
    fn application_is_deterministic_and_linear() {
        let geom = ArrayGeometry::paper_8x8();
        let cpl = MutualCoupling::from_geometry(&geom, -18.0, 1.5);
        let base: Vec<Complex64> = (0..64).map(|i| c64((i as f64 * 0.3).sin(), 0.2)).collect();
        let mut scratch = vec![Complex64::ZERO; 64];
        let mut once = base.clone();
        cpl.apply_in_place(&mut once, &mut scratch);
        let mut again = base.clone();
        cpl.apply_in_place(&mut again, &mut scratch);
        assert_eq!(once, again);
        // Linearity: C·(2w) = 2·(C·w).
        let mut doubled: Vec<Complex64> = base.iter().map(|x| x.scale(2.0)).collect();
        cpl.apply_in_place(&mut doubled, &mut scratch);
        for (d, o) in doubled.iter().zip(&once) {
            assert!((*d - o.scale(2.0)).abs() < 1e-12);
        }
    }
}
