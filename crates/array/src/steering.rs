//! Steering vectors and conjugate single-beam weights.
//!
//! Conventions follow the paper (Eq. 5–6): for a ULA with spacing `d` and a
//! departure angle `φ` measured from broadside, the channel phase at element
//! `n` is `e^{-j2π(d/λ)·n·sin φ}`; the matching single-beam weight conjugates
//! it. Angles at this API are **degrees**.

use crate::geometry::ArrayGeometry;
use crate::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;
use mmwave_hotpath::hot_path;
use std::f64::consts::PI;

/// Steering vector `a(φ)` (paper's Appendix A): element `n` carries
/// `e^{-j2π·(d/λ)·x_n·sin φ}` where `x_n` is its azimuth position in
/// wavelengths. For a UPA an elevation angle of 0 is assumed.
pub fn steering_vector(geom: &ArrayGeometry, aod_deg: f64) -> Vec<Complex64> {
    steering_vector_az_el(geom, aod_deg, 0.0)
}

/// Write-into variant of [`steering_vector`]: clears `out` and fills it,
/// reusing its allocation. This is the hot-path kernel — one call per path
/// per slot in the simulator.
#[hot_path]
pub fn steering_vector_into(geom: &ArrayGeometry, aod_deg: f64, out: &mut Vec<Complex64>) {
    steering_vector_az_el_into(geom, aod_deg, 0.0, out);
}

/// Steering vector with explicit azimuth and elevation departure angles.
// xtask-allow(hot-path-closure): owned-vector variant for construction-time callers; the slot loop uses steering_vector_az_el_into with a reused buffer
pub fn steering_vector_az_el(geom: &ArrayGeometry, az_deg: f64, el_deg: f64) -> Vec<Complex64> {
    let mut out = Vec::with_capacity(geom.num_elements());
    steering_vector_az_el_into(geom, az_deg, el_deg, &mut out);
    out
}

/// Write-into variant of [`steering_vector_az_el`].
#[hot_path]
pub fn steering_vector_az_el_into(
    geom: &ArrayGeometry,
    az_deg: f64,
    el_deg: f64,
    out: &mut Vec<Complex64>,
) {
    let su = az_deg.to_radians().sin();
    let sv = el_deg.to_radians().sin();
    out.clear();
    out.extend((0..geom.num_elements()).map(|i| {
        let phase =
            -2.0 * PI * (geom.azimuth_position_wl(i) * su + geom.elevation_position_wl(i) * sv);
        Complex64::cis(phase)
    }));
}

/// Conjugate (maximum-ratio) single-beam weights toward `aod_deg`
/// (paper Eq. 6): `w = a*(φ)/‖a(φ)‖`, unit-norm so TRP is conserved.
// xtask-allow(hot-path-closure): owned-weights variant for construction-time callers; the slot loop uses single_beam_into with a reused buffer
pub fn single_beam(geom: &ArrayGeometry, aod_deg: f64) -> BeamWeights {
    let a = steering_vector(geom, aod_deg);
    let n = (a.len() as f64).sqrt();
    BeamWeights::from_vec(a.into_iter().map(|v| v.conj() / n).collect())
}

/// Write-into variant of [`single_beam`]: overwrites `out` without
/// allocating (when its capacity suffices).
#[hot_path]
pub fn single_beam_into(geom: &ArrayGeometry, aod_deg: f64, out: &mut BeamWeights) {
    // Bit-identical to `single_beam`: same phase expression (elevation term
    // kept, multiplied by sin 0 = 0) and the same conj/scale per element.
    let su = aod_deg.to_radians().sin();
    let sv = 0.0f64;
    let n = (geom.num_elements() as f64).sqrt();
    let v = out.vec_mut();
    v.clear();
    v.extend((0..geom.num_elements()).map(|i| {
        let phase =
            -2.0 * PI * (geom.azimuth_position_wl(i) * su + geom.elevation_position_wl(i) * sv);
        Complex64::cis(phase).conj() / n
    }));
}

/// Single-beam weights with explicit azimuth and elevation.
pub fn single_beam_az_el(geom: &ArrayGeometry, az_deg: f64, el_deg: f64) -> BeamWeights {
    let a = steering_vector_az_el(geom, az_deg, el_deg);
    let n = (a.len() as f64).sqrt();
    BeamWeights::from_vec(a.into_iter().map(|v| v.conj() / n).collect())
}

/// A "wide" beam: only the central `active` azimuth elements are driven
/// (rest muted), which broadens the main lobe at the cost of array gain.
/// Used by the wide-beam baseline. Power is renormalized to unit TRP.
// xtask-allow(hot-path-closure): wide beams are built once per scan stage during acquisition, not per slot
pub fn wide_beam(geom: &ArrayGeometry, aod_deg: f64, active: usize) -> BeamWeights {
    let n_az = geom.azimuth_elements();
    let active = active.clamp(1, n_az);
    let full = steering_vector(geom, aod_deg);
    let start = (n_az - active) / 2;
    let end = start + active;
    let mut w: Vec<Complex64> = full
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let col = match geom {
                ArrayGeometry::Ula { .. } => i,
                ArrayGeometry::Upa { nx, .. } => i % nx,
            };
            if col >= start && col < end {
                v.conj()
            } else {
                Complex64::ZERO
            }
        })
        .collect();
    mmwave_dsp::complex::normalize_in_place(&mut w);
    BeamWeights::from_vec(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::norm;

    #[test]
    fn steering_vector_has_unit_elements() {
        let g = ArrayGeometry::ula(8);
        for angle in [-60.0, -10.0, 0.0, 33.0] {
            let a = steering_vector(&g, angle);
            assert_eq!(a.len(), 8);
            for v in &a {
                assert!((v.abs() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn broadside_steering_is_all_ones() {
        let g = ArrayGeometry::ula(8);
        let a = steering_vector(&g, 0.0);
        for v in &a {
            assert!((*v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn single_beam_unit_norm() {
        let g = ArrayGeometry::ula(16);
        for angle in [-45.0, 0.0, 12.0, 60.0] {
            let w = single_beam(&g, angle);
            assert!((norm(w.as_slice()) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn beam_gain_is_sqrt_n_toward_target() {
        // a(φ)ᵀ·w(φ) = √N for conjugate beamforming with unit TRP.
        let g = ArrayGeometry::ula(8);
        let angle = 25.0;
        let a = steering_vector(&g, angle);
        let w = single_beam(&g, angle);
        let gain: Complex64 = a.iter().zip(w.as_slice()).map(|(x, y)| *x * *y).sum();
        assert!((gain.abs() - (8f64).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn off_target_gain_is_lower() {
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, 0.0);
        let on: Complex64 = steering_vector(&g, 0.0)
            .iter()
            .zip(w.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        let off: Complex64 = steering_vector(&g, 30.0)
            .iter()
            .zip(w.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        assert!(off.abs() < on.abs() / 2.0);
    }

    #[test]
    fn upa_azimuth_behaviour_matches_ula() {
        // With elevation 0, a UPA's azimuth gain pattern matches its
        // azimuth-cut ULA (up to the elevation-axis power factor).
        let upa = ArrayGeometry::paper_8x8();
        let ula = upa.azimuth_cut();
        let angle = 20.0;
        let w_upa = single_beam(&upa, angle);
        let w_ula = single_beam(&ula, angle);
        let g_upa: Complex64 = steering_vector(&upa, angle)
            .iter()
            .zip(w_upa.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        let g_ula: Complex64 = steering_vector(&ula, angle)
            .iter()
            .zip(w_ula.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        // 64-element array: √64 = 8; 8-element: √8.
        assert!((g_upa.abs() - 8.0).abs() < 1e-9);
        assert!((g_ula.abs() - 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn wide_beam_unit_norm_and_wider() {
        let g = ArrayGeometry::ula(8);
        let narrow = single_beam(&g, 0.0);
        let wide = wide_beam(&g, 0.0, 2);
        assert!((norm(wide.as_slice()) - 1.0).abs() < 1e-12);
        // Peak gain of the wide beam is lower...
        let peak_n: Complex64 = steering_vector(&g, 0.0)
            .iter()
            .zip(narrow.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        let peak_w: Complex64 = steering_vector(&g, 0.0)
            .iter()
            .zip(wide.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        assert!(peak_w.abs() < peak_n.abs());
        // ...but it holds up better at 15° off-boresight.
        let off_n: Complex64 = steering_vector(&g, 15.0)
            .iter()
            .zip(narrow.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        let off_w: Complex64 = steering_vector(&g, 15.0)
            .iter()
            .zip(wide.as_slice())
            .map(|(x, y)| *x * *y)
            .sum();
        assert!(off_w.abs() > off_n.abs());
    }

    #[test]
    fn wide_beam_clamps_active_count() {
        let g = ArrayGeometry::ula(4);
        let w = wide_beam(&g, 0.0, 100);
        // active clamped to 4 → identical to the full single beam
        let s = single_beam(&g, 0.0);
        for (a, b) in w.as_slice().iter().zip(s.as_slice()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }
}
