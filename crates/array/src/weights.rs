//! Beamforming weight vectors.
//!
//! [`BeamWeights`] is the unit the rest of the system trades in: a complex
//! weight per antenna element. The FCC total-radiated-power constraint the
//! paper works under (§1) corresponds to `‖w‖ = 1`; constructors and
//! combinators preserve or restore that invariant explicitly.

use mmwave_dsp::complex::{norm, normalize_in_place, Complex64};

/// A complex beamforming weight vector, one entry per antenna element.
#[derive(Clone, Debug, PartialEq)]
pub struct BeamWeights {
    w: Vec<Complex64>,
}

impl BeamWeights {
    /// Wraps a raw weight vector without normalizing. Panics on empty input.
    pub fn from_vec(w: Vec<Complex64>) -> Self {
        assert!(!w.is_empty(), "weight vector cannot be empty");
        Self { w }
    }

    /// Wraps and normalizes to unit TRP (`‖w‖ = 1`).
    pub fn from_vec_normalized(mut w: Vec<Complex64>) -> Self {
        assert!(!w.is_empty(), "weight vector cannot be empty");
        normalize_in_place(&mut w);
        Self { w }
    }

    /// All-zero weights (radio muted) for an `n`-element array.
    // xtask-allow(hot-path-closure): constructor for the muted (all-zero) state, entered on link loss — an exceptional path
    pub fn muted(n: usize) -> Self {
        assert!(n > 0);
        Self {
            w: vec![Complex64::ZERO; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True if the vector is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }

    /// Weight slice.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.w
    }

    /// Mutable weight slice, for in-place transforms that preserve length
    /// (e.g. fault layers applying per-element gain masks).
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.w
    }

    /// Overwrites this vector with `other`'s contents, reusing the existing
    /// allocation when capacity suffices. The hot-path alternative to
    /// `*self = other.clone()`.
    pub fn copy_from(&mut self, other: &BeamWeights) {
        self.w.clear();
        self.w.extend_from_slice(&other.w);
    }

    /// Overwrites this vector with the given slice, reusing the allocation.
    /// Panics on empty input (the no-empty-weights invariant).
    pub fn copy_from_slice(&mut self, s: &[Complex64]) {
        assert!(!s.is_empty(), "weight vector cannot be empty");
        self.w.clear();
        self.w.extend_from_slice(s);
    }

    /// In-crate access to the backing vector for write-into kernels
    /// (steering, patterns) that rebuild the weights wholesale.
    pub(crate) fn vec_mut(&mut self) -> &mut Vec<Complex64> {
        &mut self.w
    }

    /// Overwrites with all-zero weights (radio muted) for an `n`-element
    /// array, reusing the allocation — the write-into [`BeamWeights::muted`].
    pub fn set_muted(&mut self, n: usize) {
        assert!(n > 0);
        self.w.clear();
        self.w.resize(n, Complex64::ZERO);
    }

    /// Consumes into the raw vector.
    pub fn into_vec(self) -> Vec<Complex64> {
        self.w
    }

    /// Euclidean norm `‖w‖` (1.0 means full TRP budget in use).
    pub fn norm(&self) -> f64 {
        norm(&self.w)
    }

    /// Renormalizes to unit TRP in place.
    pub fn renormalize(&mut self) {
        normalize_in_place(&mut self.w);
    }

    /// Applies the weights to a per-element channel vector:
    /// `y = hᵀ·w = Σ_n h[n]·w[n]` (paper Eq. 2, without noise).
    pub fn apply(&self, h: &[Complex64]) -> Complex64 {
        assert_eq!(h.len(), self.w.len(), "channel/weights length mismatch");
        h.iter().zip(&self.w).map(|(a, b)| *a * *b).sum()
    }

    /// Linear combination `Σ cᵢ·wᵢ` of weight vectors, **not** renormalized
    /// (callers that need unit TRP call [`BeamWeights::renormalize`]).
    // xtask-allow(hot-path-closure): combination output is a fresh vector by contract; called on beam updates (maintenance cadence), not per slot
    // xtask-allow(hot-path-panic): the entry asserts make every part the same length n, so element indices are in bounds
    pub fn linear_combination(parts: &[(Complex64, &BeamWeights)]) -> Self {
        assert!(!parts.is_empty(), "need at least one component");
        let n = parts[0].1.len();
        assert!(
            parts.iter().all(|(_, w)| w.len() == n),
            "all components must have equal length"
        );
        let mut out = vec![Complex64::ZERO; n];
        for (c, w) in parts {
            for (o, v) in out.iter_mut().zip(w.as_slice()) {
                *o += *c * *v;
            }
        }
        Self { w: out }
    }

    /// Per-element power `|w[n]|²`, useful for inspecting quantizer effects.
    pub fn element_powers(&self) -> Vec<f64> {
        self.w.iter().map(|v| v.norm_sqr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmwave_dsp::complex::c64;

    #[test]
    fn normalized_constructor() {
        let w = BeamWeights::from_vec_normalized(vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((w.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn muted_has_zero_norm() {
        let w = BeamWeights::muted(8);
        assert_eq!(w.norm(), 0.0);
        assert_eq!(w.len(), 8);
    }

    #[test]
    fn apply_is_inner_product_without_conjugation() {
        // hᵀw, not hᴴw — matches the paper's transmit model.
        let w = BeamWeights::from_vec(vec![c64(0.0, 1.0)]);
        let y = w.apply(&[c64(0.0, 1.0)]);
        assert!((y - c64(-1.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_combination_of_orthogonal_parts() {
        let w1 = BeamWeights::from_vec(vec![Complex64::ONE, Complex64::ZERO]);
        let w2 = BeamWeights::from_vec(vec![Complex64::ZERO, Complex64::ONE]);
        let combo = BeamWeights::linear_combination(&[(c64(0.5, 0.0), &w1), (c64(0.0, 0.5), &w2)]);
        assert_eq!(combo.as_slice()[0], c64(0.5, 0.0));
        assert_eq!(combo.as_slice()[1], c64(0.0, 0.5));
    }

    #[test]
    fn renormalize_restores_trp() {
        let mut w = BeamWeights::from_vec(vec![c64(2.0, 0.0), c64(0.0, 2.0)]);
        assert!(w.norm() > 1.0);
        w.renormalize();
        assert!((w.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn apply_checks_lengths() {
        BeamWeights::muted(4).apply(&[Complex64::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        BeamWeights::from_vec(Vec::new());
    }

    #[test]
    fn element_powers() {
        let w = BeamWeights::from_vec(vec![c64(1.0, 1.0), c64(0.0, 2.0)]);
        let p = w.element_powers();
        assert!((p[0] - 2.0).abs() < 1e-12);
        assert!((p[1] - 4.0).abs() < 1e-12);
    }
}
