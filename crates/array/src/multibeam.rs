//! Constructive multi-beam synthesis.
//!
//! The paper's core beamforming object (Eq. 10 for two beams, Eq. 29 for K):
//!
//! ```text
//! w(φ₁..φ_K, δ..., σ...) = ( Σ_b δ_b·e^{-jσ_b}·w_{φ_b} ) / ‖·‖
//! ```
//!
//! Each component carries an angle, a relative amplitude `δ_b` (δ₁ = 1 by
//! convention — the first beam is the reference), and a relative phase
//! `σ_b`. The denominator restores `‖w‖ = 1`, conserving total radiated
//! power, so splitting into more beams never radiates more energy — the
//! SNR gain comes purely from coherent combining at the receiver.

use crate::geometry::ArrayGeometry;
use crate::steering::single_beam;
use crate::weights::BeamWeights;
use mmwave_dsp::complex::Complex64;

/// One constituent beam of a multi-beam.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BeamComponent {
    /// Steering angle, degrees.
    pub angle_deg: f64,
    /// Relative amplitude δ (linear, ≥ 0; the reference beam uses 1.0).
    pub amplitude: f64,
    /// Relative phase σ, radians.
    pub phase_rad: f64,
}

impl BeamComponent {
    /// Reference component: amplitude 1, phase 0.
    pub fn reference(angle_deg: f64) -> Self {
        Self {
            angle_deg,
            amplitude: 1.0,
            phase_rad: 0.0,
        }
    }

    /// Component with explicit relative amplitude/phase.
    pub fn new(angle_deg: f64, amplitude: f64, phase_rad: f64) -> Self {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        Self {
            angle_deg,
            amplitude,
            phase_rad,
        }
    }

    /// Complex coefficient `δ·e^{-jσ}` this component contributes
    /// (the conjugated sign matches paper Eq. 10: the weight *cancels* the
    /// channel's relative phase).
    pub fn coefficient(&self) -> Complex64 {
        Complex64::from_polar(self.amplitude, -self.phase_rad)
    }
}

/// A multi-beam: an ordered set of [`BeamComponent`]s. Index 0 is the
/// reference beam (strongest path, usually LOS).
#[derive(Clone, Debug, PartialEq)]
pub struct MultiBeam {
    components: Vec<BeamComponent>,
}

impl MultiBeam {
    /// Builds a multi-beam from components. Panics on empty input.
    pub fn new(components: Vec<BeamComponent>) -> Self {
        assert!(
            !components.is_empty(),
            "multi-beam needs at least one component"
        );
        Self { components }
    }

    /// Degenerate single beam toward `angle_deg`.
    pub fn single(angle_deg: f64) -> Self {
        Self::new(vec![BeamComponent::reference(angle_deg)])
    }

    /// The paper's 2-beam constructor `w(φ₁, φ₂, δ, σ)` (Eq. 10).
    // xtask-allow(hot-path-closure): constructor; a multi-beam is built at establishment time and mutated in place afterwards
    pub fn two_beam(phi1_deg: f64, phi2_deg: f64, delta: f64, sigma_rad: f64) -> Self {
        Self::new(vec![
            BeamComponent::reference(phi1_deg),
            BeamComponent::new(phi2_deg, delta, sigma_rad),
        ])
    }

    /// Number of constituent beams (K).
    pub fn num_beams(&self) -> usize {
        self.components.len()
    }

    /// Component accessor.
    pub fn component(&self, k: usize) -> &BeamComponent {
        debug_assert!(k < self.components.len());
        &self.components[k]
    }

    /// Mutable component accessor (used by the tracker to realign beams).
    pub fn component_mut(&mut self, k: usize) -> &mut BeamComponent {
        debug_assert!(k < self.components.len());
        &mut self.components[k]
    }

    /// All components.
    pub fn components(&self) -> &[BeamComponent] {
        &self.components
    }

    /// Steering angles of all beams, degrees.
    // xtask-allow(hot-path-closure): short per-call angle list used by acquisition/telemetry paths, not the slot loop
    pub fn angles_deg(&self) -> Vec<f64> {
        self.components.iter().map(|c| c.angle_deg).collect()
    }

    /// Removes beam `k` (blockage response: §4.1 re-purposes its power to
    /// the surviving beams — which happens automatically through the final
    /// normalization in [`MultiBeam::weights`]). Panics if it is the last
    /// remaining beam.
    pub fn drop_beam(&mut self, k: usize) -> BeamComponent {
        assert!(self.components.len() > 1, "cannot drop the last beam");
        self.components.remove(k)
    }

    /// Adds a beam component.
    pub fn add_beam(&mut self, c: BeamComponent) {
        self.components.push(c);
    }

    /// Fraction of transmit power each beam carries, under the
    /// well-separated-beams approximation (`|⟨w_i, w_j⟩| ≈ 0`):
    /// `p_b = δ_b² / Σ δ²`.
    pub fn power_fractions(&self) -> Vec<f64> {
        let total: f64 = self
            .components
            .iter()
            .map(|c| c.amplitude * c.amplitude)
            .sum();
        if total == 0.0 {
            return vec![0.0; self.components.len()];
        }
        self.components
            .iter()
            .map(|c| c.amplitude * c.amplitude / total)
            .collect()
    }

    /// Synthesizes the unit-TRP weight vector on the given array
    /// (paper Eq. 10 / Eq. 29).
    // xtask-allow(hot-path-closure): weight synthesis allocates per call by contract (paper Eq. 10); the per-slot loop synthesizes only on beam updates, which are maintenance-cadence events
    pub fn weights(&self, geom: &ArrayGeometry) -> BeamWeights {
        let beams: Vec<BeamWeights> = self
            .components
            .iter()
            .map(|c| single_beam(geom, c.angle_deg))
            .collect();
        let parts: Vec<(Complex64, &BeamWeights)> = self
            .components
            .iter()
            .zip(&beams)
            .map(|(c, w)| (c.coefficient(), w))
            .collect();
        let mut combo = BeamWeights::linear_combination(&parts);
        combo.renormalize();
        combo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{array_factor, power_gain_db};
    use crate::steering::steering_vector;

    #[test]
    fn single_component_equals_single_beam() {
        let g = ArrayGeometry::ula(8);
        let mb = MultiBeam::single(12.0).weights(&g);
        let sb = single_beam(&g, 12.0);
        for (a, b) in mb.as_slice().iter().zip(sb.as_slice()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_unit_norm() {
        let g = ArrayGeometry::ula(16);
        let mb = MultiBeam::two_beam(0.0, 30.0, 0.7, 1.2);
        assert!((mb.weights(&g).norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_beam_pattern_has_two_lobes() {
        let g = ArrayGeometry::ula(16);
        let mb = MultiBeam::two_beam(-20.0, 25.0, 1.0, 0.0);
        let w = mb.weights(&g);
        let lobe1 = power_gain_db(&g, &w, -20.0);
        let lobe2 = power_gain_db(&g, &w, 25.0);
        let valley = power_gain_db(&g, &w, 2.0);
        assert!(lobe1 > valley + 6.0, "lobe1 {lobe1} valley {valley}");
        assert!(lobe2 > valley + 6.0, "lobe2 {lobe2} valley {valley}");
    }

    #[test]
    fn equal_split_halves_per_beam_power() {
        // δ = 1: each lobe's peak array factor power is ≈ N/2 (vs N for a
        // dedicated single beam) — the paper's intuition from §1.
        let g = ArrayGeometry::ula(16);
        let mb = MultiBeam::two_beam(-25.0, 25.0, 1.0, 0.0);
        let w = mb.weights(&g);
        let p1 = array_factor(&g, &w, -25.0).norm_sqr();
        let p2 = array_factor(&g, &w, 25.0).norm_sqr();
        assert!((p1 - 8.0).abs() < 0.5, "p1 {p1}");
        assert!((p2 - 8.0).abs() < 0.5, "p2 {p2}");
    }

    #[test]
    fn power_fractions_sum_to_one() {
        let mb = MultiBeam::new(vec![
            BeamComponent::reference(0.0),
            BeamComponent::new(20.0, 0.5, 0.3),
            BeamComponent::new(-35.0, 0.25, 2.0),
        ]);
        let f = mb.power_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // δ = 0.5 → power fraction 0.25/1.3125
        assert!((f[1] - 0.25 / 1.3125).abs() < 1e-12);
        assert!(f[0] > f[1] && f[1] > f[2]);
    }

    #[test]
    fn coefficient_conjugates_phase() {
        let c = BeamComponent::new(0.0, 2.0, 0.5);
        let z = c.coefficient();
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() + 0.5).abs() < 1e-12);
    }

    #[test]
    fn constructive_combining_beats_mismatched_phase() {
        // Channel: two equal paths, second with phase σ. Weight matched to σ
        // must beat weight with opposite phase.
        let g = ArrayGeometry::ula(16);
        let (phi1, phi2) = (-15.0, 35.0);
        let sigma = 1.0;
        // Effective channel: h = a(φ1) + e^{jσ}·a(φ2)
        let a1 = steering_vector(&g, phi1);
        let a2 = steering_vector(&g, phi2);
        let h: Vec<Complex64> = a1
            .iter()
            .zip(&a2)
            .map(|(x, y)| *x + Complex64::cis(sigma) * *y)
            .collect();
        let matched = MultiBeam::two_beam(phi1, phi2, 1.0, sigma).weights(&g);
        let mismatched =
            MultiBeam::two_beam(phi1, phi2, 1.0, sigma + std::f64::consts::PI).weights(&g);
        let p_m = matched.apply(&h).norm_sqr();
        let p_x = mismatched.apply(&h).norm_sqr();
        assert!(p_m > 3.0 * p_x, "matched {p_m} vs mismatched {p_x}");
    }

    #[test]
    fn drop_beam_removes_and_renormalizes() {
        let g = ArrayGeometry::ula(8);
        let mut mb = MultiBeam::two_beam(0.0, 30.0, 1.0, 0.0);
        let dropped = mb.drop_beam(1);
        assert_eq!(dropped.angle_deg, 30.0);
        assert_eq!(mb.num_beams(), 1);
        // Power re-purposed: the remaining beam gets the full TRP.
        let w = mb.weights(&g);
        let p = array_factor(&g, &w, 0.0).norm_sqr();
        assert!((p - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "last beam")]
    fn cannot_drop_last_beam() {
        MultiBeam::single(0.0).drop_beam(0);
    }

    #[test]
    fn three_beam_construction() {
        let g = ArrayGeometry::ula(16);
        let mb = MultiBeam::new(vec![
            BeamComponent::reference(0.0),
            BeamComponent::new(30.0, 0.6, 0.4),
            BeamComponent::new(-40.0, 0.4, -1.0),
        ]);
        assert_eq!(mb.num_beams(), 3);
        let w = mb.weights(&g);
        assert!((w.norm() - 1.0).abs() < 1e-12);
        // All three lobes present.
        for angle in [0.0, 30.0, -40.0] {
            let gain = power_gain_db(&g, &w, angle);
            assert!(gain > 0.0, "lobe at {angle}: {gain} dB");
        }
    }
}
