//! Property-based tests for the phased-array model.

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::multibeam::{BeamComponent, MultiBeam};
use mmwave_array::pattern::{array_factor, invert_gain_drop, ula_gain_rel};
use mmwave_array::quantize::Quantizer;
use mmwave_array::steering::{single_beam, steering_vector};
use mmwave_dsp::units::db_from_pow;
use proptest::prelude::*;

fn angle() -> impl Strategy<Value = f64> {
    -60.0..60.0f64
}

proptest! {
    #[test]
    fn single_beam_always_unit_norm(n in 1usize..64, a in angle()) {
        let w = single_beam(&ArrayGeometry::ula(n), a);
        prop_assert!((w.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn peak_gain_is_n_at_steering_angle(n in 1usize..64, a in angle()) {
        let g = ArrayGeometry::ula(n);
        let w = single_beam(&g, a);
        let p = array_factor(&g, &w, a).norm_sqr();
        prop_assert!((p - n as f64).abs() < 1e-6 * n as f64);
    }

    #[test]
    fn gain_never_exceeds_n(n in 2usize..32, steer in angle(), theta in angle()) {
        let g = ArrayGeometry::ula(n);
        let w = single_beam(&g, steer);
        let p = array_factor(&g, &w, theta).norm_sqr();
        prop_assert!(p <= n as f64 * (1.0 + 1e-9));
    }

    #[test]
    fn closed_form_pattern_matches_array_factor(n in 2usize..32, steer in angle(), theta in angle()) {
        let g = ArrayGeometry::ula(n);
        let w = single_beam(&g, steer);
        let exact = array_factor(&g, &w, theta).abs() / (n as f64).sqrt();
        let closed = ula_gain_rel(n, 0.5, steer, theta);
        prop_assert!((exact - closed).abs() < 1e-6);
    }

    #[test]
    fn multibeam_weights_unit_norm(
        phi1 in angle(), phi2 in angle(), delta in 0.01..1.5f64, sigma in 0.0..std::f64::consts::TAU
    ) {
        let mb = MultiBeam::two_beam(phi1, phi2, delta, sigma);
        let w = mb.weights(&ArrayGeometry::ula(16));
        prop_assert!((w.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multibeam_power_fractions_sum_to_one(
        amps in prop::collection::vec(0.01..2.0f64, 1..5)
    ) {
        let comps: Vec<BeamComponent> = amps
            .iter()
            .enumerate()
            .map(|(i, &a)| BeamComponent::new(i as f64 * 10.0 - 20.0, a, 0.0))
            .collect();
        let mb = MultiBeam::new(comps);
        let f = mb.power_fractions();
        prop_assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn quantization_preserves_power(steer in angle(), n_exp in 2u32..6) {
        let n = 1usize << n_exp;
        let w = single_beam(&ArrayGeometry::ula(n), steer);
        for q in [Quantizer::paper_array(), Quantizer::commercial_80211ad()] {
            let out = q.quantize(&w);
            prop_assert!((out.norm() - w.norm()).abs() < 1e-9);
        }
    }

    #[test]
    fn quantized_beam_keeps_most_gain(steer in -55.0..55.0f64) {
        let g = ArrayGeometry::ula(8);
        let w = single_beam(&g, steer);
        let q = Quantizer::paper_array().quantize(&w);
        let ideal = array_factor(&g, &w, steer).abs();
        let quant = array_factor(&g, &q, steer).abs();
        prop_assert!(quant > 0.9 * ideal, "quantized gain {quant} vs {ideal}");
    }

    #[test]
    fn invert_gain_drop_round_trips(steer in -30.0..30.0f64, frac in 0.05..0.85f64) {
        // Pick a deviation within the main lobe, compute its drop, invert.
        let g = ArrayGeometry::ula(8);
        let null = mmwave_array::pattern::first_null_offset_deg(&g, steer, 1.0);
        let dtheta = frac * null;
        let gain = ula_gain_rel(8, 0.5, steer, steer + dtheta);
        prop_assume!(gain > 1e-3);
        let drop_db = -db_from_pow(gain * gain);
        let est = invert_gain_drop(&g, steer, drop_db);
        prop_assert!(est.is_some());
        prop_assert!((est.unwrap() - dtheta).abs() < 0.1, "Δθ {dtheta} est {:?}", est);
    }

    #[test]
    fn steering_vector_elements_unit_magnitude(n in 1usize..64, az in angle(), el in -30.0..30.0f64) {
        let g = ArrayGeometry::upa(n.clamp(1, 8), 4);
        let a = mmwave_array::steering::steering_vector_az_el(&g, az, el);
        for v in &a {
            prop_assert!((v.abs() - 1.0).abs() < 1e-9);
        }
        let _ = steering_vector(&g, az);
    }
}
