//! `#[hot_path]` — the zero-allocation contract, stated at the definition.
//!
//! PR 2 rebuilt the steady-state slot loop around reused buffers
//! (`SlotWorkspace`, `ChannelSnapshot`, the `*_into` kernels, the
//! superres `FitScratch`) and proved the result allocation-free with a
//! counting allocator (`crates/sim/tests/zero_alloc.rs`). That proof is a
//! single end-to-end test: it tells you *that* a slot allocated, not
//! *where*, and it only covers the configurations the test happens to
//! drive.
//!
//! This attribute states the contract function-by-function. It expands to
//! exactly its input — zero runtime cost, zero codegen difference — and
//! exists so `cargo xtask lint` can find every marked function and reject
//! allocating calls (`Vec::new`, `with_capacity`, `.clone()`,
//! `.collect()`, `format!`, `Box::new`, …) inside it at build time, with
//! a spanned diagnostic pointing at the call. Growth-by-`push` into a
//! caller-owned buffer remains legal: amortized growth reaches a fixed
//! point after warmup, which is the steady state the runtime test
//! measures.
//!
//! Suppress a deliberate exception at the call site with
//! `// xtask-allow(hot-path-alloc): <reason>` — the reason is mandatory
//! and the suppression itself is linted for staleness.
//!
//! ```ignore
//! use mmwave_hotpath::hot_path;
//!
//! #[hot_path]
//! pub fn steering_vector_into(geom: &ArrayGeometry, aod_deg: f64, out: &mut Vec<Complex64>) {
//!     out.clear();
//!     // … push per-element phasors; no fresh allocations …
//! }
//! ```

use proc_macro::TokenStream;

/// Marks a function as part of the zero-allocation steady-state path.
/// Pure pass-through: the item is returned untouched.
#[proc_macro_attribute]
pub fn hot_path(_attr: TokenStream, item: TokenStream) -> TokenStream {
    item
}
