//! Property-based scenario fuzzing: random-but-valid [`ScenarioSpec`]s
//! run against invariant oracles, with deterministic greedy shrinking and
//! replayable counterexamples.
//!
//! The generator ([`arb_spec`]) produces specs that are valid by
//! construction but deliberately wider than the curated library:
//! multi-blocker crowds, vehicular speeds beyond the paper's 1.5 m/s,
//! heterogeneous per-UE fault/impairment fleet mixes. Every generated
//! spec runs through the same [`crate::campaign::replay_cell`] /
//! [`crate::fleet::run_fleet`] machinery as a journaled cell, and each
//! completed run is held to the oracles:
//!
//! | oracle | invariant |
//! |---|---|
//! | `lifecycle-wedge` | the transition tape is legal, chained, time-ordered, and ends in a state with a legal exit ([`mmreliable::linkstate::check_transition_tape`]) |
//! | `outage-recovery` | every sub-outage-SNR stretch longer than the spec's recovery horizon shows recovery activity (probing or a lifecycle transition) within that horizon |
//! | `validation` / `panic` / `timeout` | the run completes and [`crate::metrics::RunResult::validate`] passes (classified by [`crate::campaign::replay_cell`]) |
//! | `determinism` | running the same spec twice produces bit-identical digests |
//! | `clean-identity` | a zero-fault/zero-impairment spec is bit-identical to the clean constructor-built run |
//! | `fleet-invariance` | a fleet spec's digest is identical under (1 thread, 1 shard) and (2 threads, 3 shards) |
//!
//! A failing spec is shrunk by [`shrink_spec`] — a deterministic greedy
//! loop over structural simplifications (drop the fleet, drop blockers,
//! still the trajectory, halve the duration, strip fault/impairment
//! components), accepting a candidate only when the *same* oracle still
//! fails — and the minimal spec is written as a replayable journal line:
//! `replay --cell` reproduces the counterexample bit-identically.
//!
//! [`OracleOptions::inject_wedge`] is a test-only deliberately-broken
//! oracle (it claims every completed single-link run ended wedged) used
//! by the acceptance suite to prove the find → shrink → replay loop end
//! to end.

use crate::campaign::{replay_cell, FailureKind, JournalEntry, STRATEGY_NAMES};
use crate::faults::{FaultSchedule, ProbeLossWindow, SnrGlitch};
use crate::fleet::run_fleet;
use crate::impairments::ImpairmentConfig;
use crate::metrics::RunResult;
use crate::spec::{
    curated_worlds, BlockerSpec, CustomWorld, FleetMixSpec, MixGroup, RoomKind, ScenarioSpec,
    TrajSpec, WorldSpec,
};
use mmreliable::linkstate::{check_transition_tape, has_legal_exit};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

/// The simulator's outage SNR threshold ([`crate::LinkSimulator`] default)
/// — the level below which the `outage-recovery` oracle demands activity.
pub const OUTAGE_SNR_DB: f64 = 6.0;

/// Base recovery horizon for the `outage-recovery` oracle, seconds. The
/// per-spec horizon adds the total scheduled dark/probe-loss time, so a
/// spec that forbids probing for 200 ms is not blamed for staying down
/// through it.
pub const RECOVERY_HORIZON_S: f64 = 0.25;

// ---------------------------------------------------------------------------
// Generation
// ---------------------------------------------------------------------------

/// A [`Strategy`] over full scenario specs. Valid by construction: every
/// generated spec passes [`ScenarioSpec::validate`].
pub struct SpecStrategy {
    allow_fleet: bool,
}

impl Strategy for SpecStrategy {
    type Value = ScenarioSpec;
    fn new_value(&self, rng: &mut TestRng) -> ScenarioSpec {
        gen_spec(rng, self.allow_fleet)
    }
}

/// Random-but-valid specs: curated and custom worlds, faulted and
/// impaired, with roughly one in six cases a multi-UE fleet mix.
pub fn arb_spec() -> SpecStrategy {
    SpecStrategy { allow_fleet: true }
}

/// [`arb_spec`] restricted to single-link specs.
pub fn arb_single_spec() -> SpecStrategy {
    SpecStrategy { allow_fleet: false }
}

fn gen_range(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.unit_f64()
}

fn gen_sign(rng: &mut TestRng) -> f64 {
    if rng.below(2) == 0 {
        1.0
    } else {
        -1.0
    }
}

/// Fleet base worlds: cheap registry scenarios (fleet oracles run every
/// member at least twice).
const FLEET_BASES: [&str; 3] = ["static-walker", "translation-1s", "mobile-blockage"];

fn gen_traj(rng: &mut TestRng, room: RoomKind, duration_s: f64) -> TrajSpec {
    // Keep the UE inside a loose per-room box over warm-up + duration by
    // flipping a velocity component whose endpoint would escape.
    let span_s = duration_s + 0.1;
    match room {
        RoomKind::Conference => match rng.below(3) {
            0 => TrajSpec::Static {
                x: gen_range(rng, -0.2, 1.2),
                y: gen_range(rng, 6.2, 7.6),
                facing_deg: gen_range(rng, 170.0, 190.0),
            },
            1 => {
                let x = gen_range(rng, -0.2, 0.9);
                let y = gen_range(rng, 6.4, 7.4);
                // Up to 2 m/s: beyond the paper's 1.5 m/s walking pace.
                let mut vx = gen_sign(rng) * gen_range(rng, 0.5, 2.0);
                let mut vy = gen_range(rng, -0.3, 0.3);
                if !(-0.5..=2.5).contains(&(x + vx * span_s)) {
                    vx = -vx;
                }
                if !(5.8..=7.8).contains(&(y + vy * span_s)) {
                    vy = -vy;
                }
                TrajSpec::Translation {
                    x,
                    y,
                    facing_deg: gen_range(rng, 170.0, 190.0),
                    vx,
                    vy,
                }
            }
            _ => TrajSpec::Rotation {
                rate_deg_s: gen_range(rng, 2.0, 45.0),
            },
        },
        RoomKind::Outdoor => match rng.below(3) {
            0 => TrajSpec::Static {
                x: gen_range(rng, -1.0, 1.0),
                y: gen_range(rng, 10.0, 60.0),
                facing_deg: gen_range(rng, 170.0, 190.0),
            },
            1 => {
                let x = gen_range(rng, -1.0, 1.0);
                let y = gen_range(rng, 20.0, 45.0);
                let mut vx = gen_range(rng, -1.0, 1.0);
                // Vehicular: up to 8 m/s along the street.
                let mut vy = gen_sign(rng) * gen_range(rng, 1.0, 8.0);
                if !(-2.0..=2.0).contains(&(x + vx * span_s)) {
                    vx = -vx;
                }
                if !(8.0..=60.0).contains(&(y + vy * span_s)) {
                    vy = -vy;
                }
                TrajSpec::Translation {
                    x,
                    y,
                    facing_deg: gen_range(rng, 170.0, 190.0),
                    vx,
                    vy,
                }
            }
            _ => TrajSpec::Rotation {
                rate_deg_s: gen_range(rng, 2.0, 45.0),
            },
        },
        RoomKind::Appendix28 | RoomKind::Appendix60 => match rng.below(2) {
            0 => TrajSpec::Static {
                x: gen_range(rng, -0.5, 0.5),
                y: gen_range(rng, 8.0, 12.0),
                facing_deg: gen_range(rng, 175.0, 185.0),
            },
            _ => TrajSpec::Rotation {
                rate_deg_s: gen_range(rng, 2.0, 30.0),
            },
        },
    }
}

fn gen_custom_world(rng: &mut TestRng) -> CustomWorld {
    let room = match rng.below(4) {
        0 => RoomKind::Conference,
        1 => RoomKind::Outdoor,
        2 => RoomKind::Appendix28,
        _ => RoomKind::Appendix60,
    };
    let duration_s = gen_range(rng, 0.3, 0.9);
    let traj = gen_traj(rng, room, duration_s);
    // Multi-blocker crowds: up to five overlapping trapezoid fades.
    let n_blockers = rng.below(6) as usize;
    let blockers = (0..n_blockers)
        .map(|_| BlockerSpec {
            path: rng.below(6) as u32,
            start_s: gen_range(rng, 0.0, duration_s * 0.8),
            depth_db: gen_range(rng, 10.0, 35.0),
            hold_s: gen_range(rng, 0.05, 0.35),
        })
        .collect();
    CustomWorld {
        room,
        max_bounces: 1 + rng.below(2) as u8,
        duration_s,
        traj,
        blockers,
    }
}

fn gen_world(rng: &mut TestRng) -> WorldSpec {
    if rng.below(4) == 0 {
        let worlds = curated_worlds();
        worlds[rng.below(worlds.len() as u64) as usize].clone()
    } else {
        WorldSpec::Custom(gen_custom_world(rng))
    }
}

fn gen_fault(rng: &mut TestRng) -> FaultSchedule {
    let mut f = FaultSchedule::none();
    f.seed = rng.below(1 << 32);
    if rng.below(3) == 0 {
        let start = gen_range(rng, 0.0, 0.5);
        f.probe_loss.push(ProbeLossWindow {
            start_s: start,
            end_s: start + gen_range(rng, 0.05, 0.3),
            loss_prob: gen_range(rng, 0.2, 0.9),
        });
    }
    if rng.below(3) == 0 {
        f.stale_prob = gen_range(rng, 0.05, 0.4);
    }
    if rng.below(3) == 0 {
        f.snr_glitch = Some(SnrGlitch {
            prob: gen_range(rng, 0.05, 0.3),
            mag_db: gen_range(rng, 3.0, 12.0),
        });
    }
    if rng.below(3) == 0 {
        let n = 1 + rng.below(3) as usize;
        let mut failed: Vec<usize> = (0..n).map(|_| rng.below(16) as usize).collect();
        failed.sort_unstable();
        failed.dedup();
        f.failed_elements = failed;
    }
    if rng.below(3) == 0 {
        f.gain_drift_db = gen_range(rng, 0.5, 3.0);
        f.gain_drift_period_s = gen_range(rng, 0.2, 1.0);
    }
    if rng.below(3) == 0 {
        let start = gen_range(rng, 0.1, 0.6);
        f.unavailable
            .push((start, start + gen_range(rng, 0.05, 0.25)));
    }
    // A schedule whose every component rolled inert canonicalizes to
    // `none`; return the canonical value so spec strings round-trip.
    if f.is_inert() {
        return FaultSchedule::none();
    }
    f
}

fn gen_impairment(rng: &mut TestRng) -> ImpairmentConfig {
    let seed = rng.below(1 << 32);
    match rng.below(4) {
        0 => ImpairmentConfig::none(),
        1 => ImpairmentConfig::mild(seed),
        2 => ImpairmentConfig::moderate(seed),
        _ => ImpairmentConfig::severe(seed),
    }
}

fn gen_spec(rng: &mut TestRng, allow_fleet: bool) -> ScenarioSpec {
    let strategy = STRATEGY_NAMES[rng.below(STRATEGY_NAMES.len() as u64) as usize].to_string();
    let seed = rng.below(1_000_000);
    if allow_fleet && rng.below(6) == 0 {
        let base = FLEET_BASES[rng.below(FLEET_BASES.len() as u64) as usize];
        let n_groups = rng.below(3) as usize;
        let groups = (0..n_groups)
            .map(|_| MixGroup {
                fault: gen_fault(rng),
                impairment: gen_impairment(rng),
            })
            .collect();
        return ScenarioSpec {
            world: WorldSpec::parse(base).expect("fleet bases are registry names"),
            strategy,
            seed,
            fault: FaultSchedule::none(),
            impairment: ImpairmentConfig::none(),
            fleet: Some(FleetMixSpec {
                n_ues: 2 + rng.below(3) as u32,
                groups,
            }),
        };
    }
    let fault = if rng.below(2) == 0 {
        FaultSchedule::none()
    } else {
        gen_fault(rng)
    };
    ScenarioSpec {
        world: gen_world(rng),
        strategy,
        seed,
        fault,
        impairment: gen_impairment(rng),
        fleet: None,
    }
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Which oracles [`check_spec`] applies.
#[derive(Clone, Copy, Debug)]
pub struct OracleOptions {
    /// Test-only deliberately-broken oracle: treats every completed
    /// single-link run as wedged. Exists so the acceptance suite can
    /// prove a planted bug is found, shrunk, and replayed; never enabled
    /// in real fuzzing.
    pub inject_wedge: bool,
    /// Run fleet specs a second time under a different thread/shard split
    /// and demand digest equality. On by default; costs a second full
    /// fleet execution per fleet spec.
    pub fleet_invariance: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        Self {
            inject_wedge: false,
            fleet_invariance: true,
        }
    }
}

/// One oracle violation: which invariant broke, on what evidence, and the
/// journal fields (`status`, `digest`, `reliability`) the counterexample
/// line should carry so `replay` reproduces the same outcome.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Oracle name (`lifecycle-wedge`, `outage-recovery`, `determinism`,
    /// `clean-identity`, `fleet-invariance`, or a
    /// [`FailureKind::as_str`] class).
    pub oracle: &'static str,
    /// Human-readable evidence.
    pub detail: String,
    /// Journal status for the counterexample line (`"ok"` when the run
    /// completed and an invariant failed; the failure class otherwise).
    pub status: String,
    /// Digest of the (first) run, `0` when the run never completed.
    pub digest: u64,
    /// Reliability of the (first) run, `0` when the run never completed.
    pub reliability: f64,
}

fn run_failure(f: crate::campaign::CampaignFailure) -> FuzzFailure {
    let oracle = match f.kind {
        FailureKind::Panic => "panic",
        FailureKind::Timeout => "timeout",
        FailureKind::Validation => "validation",
    };
    FuzzFailure {
        oracle,
        detail: f.message,
        status: f.kind.as_str().to_string(),
        digest: 0,
        reliability: 0.0,
    }
}

/// The `outage-recovery` horizon for one spec: the base horizon plus all
/// scheduled dark/probe-loss time (the controller cannot recover while its
/// probes are scheduled to be erased).
pub fn recovery_horizon_s(spec: &ScenarioSpec) -> f64 {
    let mut h = RECOVERY_HORIZON_S;
    for w in &spec.fault.probe_loss {
        h += w.end_s - w.start_s;
    }
    for (a, b) in &spec.fault.unavailable {
        h += b - a;
    }
    h
}

/// Strategies the `outage-recovery` oracle holds to account: the paper's
/// scheme and the reactive baseline both actively re-train after an
/// outage. Periodic/static baselines legitimately sit through one.
const RECOVERING_STRATEGIES: [&str; 2] = ["mmreliable", "single-beam-reactive"];

fn check_lifecycle(result: &RunResult, inject_wedge: bool) -> Result<(), String> {
    let transitions: Vec<_> = result.transitions().collect();
    if inject_wedge {
        // The planted bug: claim every completed run ended wedged. Fires
        // deterministically on the first single-link case so the
        // acceptance suite can watch it get caught, shrunk, and replayed.
        return Err(match transitions.last() {
            Some(tr) => format!(
                "injected wedge oracle: claiming {:?} at t={:.3} has no legal exit",
                tr.to.kind(),
                tr.t_s
            ),
            None => "injected wedge oracle: claiming the quiescent run is wedged".to_string(),
        });
    }
    check_transition_tape(transitions.iter().copied())?;
    if let Some(last) = transitions.last() {
        if !has_legal_exit(last.to.kind()) {
            return Err(format!("run ended wedged in {:?}", last.to.kind()));
        }
    }
    Ok(())
}

fn check_outage_recovery(spec: &ScenarioSpec, result: &RunResult) -> Result<(), String> {
    if !RECOVERING_STRATEGIES.contains(&spec.strategy.as_str()) {
        return Ok(());
    }
    let horizon = recovery_horizon_s(spec);
    let transition_times: Vec<f64> = result.transitions().map(|tr| tr.t_s).collect();
    let mut outage_start: Option<f64> = None;
    let mut activity_since: bool = false;
    for s in &result.samples {
        if s.probing {
            activity_since = true;
            continue;
        }
        if !s.snr_db.is_finite() || s.snr_db >= OUTAGE_SNR_DB {
            outage_start = None;
            continue;
        }
        let start = *outage_start.get_or_insert_with(|| {
            activity_since = false;
            s.t_s
        });
        if s.t_s - start > horizon {
            let recovered = activity_since
                || transition_times
                    .iter()
                    .any(|&t| t > start && t <= start + horizon);
            if !recovered {
                return Err(format!(
                    "sub-{OUTAGE_SNR_DB} dB outage from t={start:.3} showed no probing or \
                     lifecycle activity within the {horizon:.3} s recovery horizon"
                ));
            }
            // Activity happened: restart the clock on the remaining outage.
            outage_start = Some(s.t_s);
            activity_since = false;
        }
    }
    Ok(())
}

/// Runs one spec against the oracles. `Ok((digest, reliability))` when
/// every oracle passes; the first violation otherwise.
pub fn check_spec(spec: &ScenarioSpec, opts: &OracleOptions) -> Result<(u64, f64), FuzzFailure> {
    match &spec.fleet {
        Some(_) => check_fleet_spec(spec, opts),
        None => check_single_spec(spec, opts),
    }
}

fn check_single_spec(spec: &ScenarioSpec, opts: &OracleOptions) -> Result<(u64, f64), FuzzFailure> {
    let entry = spec.journal_entry(0, 0.0, "");
    let (result, digest) = replay_cell(&entry).map_err(run_failure)?;
    let reliability = result.reliability();
    let completed = |oracle: &'static str, detail: String| FuzzFailure {
        oracle,
        detail,
        status: "ok".to_string(),
        digest,
        reliability,
    };
    check_lifecycle(&result, opts.inject_wedge).map_err(|d| completed("lifecycle-wedge", d))?;
    check_outage_recovery(spec, &result).map_err(|d| completed("outage-recovery", d))?;
    let (_, digest2) = replay_cell(&entry).map_err(run_failure)?;
    if digest2 != digest {
        return Err(completed(
            "determinism",
            format!("re-run digest {digest2:016x} != first digest {digest:016x}"),
        ));
    }
    if spec.fault.is_inert() && spec.impairment.is_inert() {
        // Clean spec ≡ clean constructor run: build the scenario directly
        // (no decorators, no spec machinery) and demand the same digest.
        let clean = (|| -> Result<u64, String> {
            let sc = spec.world.build(spec.seed).map_err(|e| e.to_string())?;
            let mut strategy = crate::campaign::build_strategy(&spec.strategy)
                .ok_or_else(|| format!("unknown strategy {:?}", spec.strategy))?;
            let r = sc.simulator(spec.seed).run_with_warmup(
                strategy.as_mut(),
                sc.duration_s,
                sc.tick_period_s,
                sc.name,
                sc.warmup_s,
            );
            Ok(r.digest())
        })()
        .map_err(|d| completed("clean-identity", d))?;
        if clean != digest {
            return Err(completed(
                "clean-identity",
                format!("clean constructor digest {clean:016x} != spec-path digest {digest:016x}"),
            ));
        }
    }
    Ok((digest, reliability))
}

fn check_fleet_spec(spec: &ScenarioSpec, opts: &OracleOptions) -> Result<(u64, f64), FuzzFailure> {
    let fleet_fail = |oracle: &'static str, detail: String| FuzzFailure {
        oracle,
        detail,
        status: "validation".to_string(),
        digest: 0,
        reliability: 0.0,
    };
    let mut cfg = spec
        .fleet_config()
        .map_err(|e| fleet_fail("validation", e.to_string()))?;
    cfg.threads = 1;
    cfg.shards = 1;
    let report = run_fleet(&cfg).map_err(|e| fleet_fail("validation", e))?;
    let digest = report.digest;
    let reliability = report.mean_reliability();
    if opts.fleet_invariance {
        cfg.threads = 2;
        cfg.shards = 3;
        let report2 = run_fleet(&cfg).map_err(|e| fleet_fail("validation", e))?;
        if report2.digest != digest {
            return Err(FuzzFailure {
                oracle: "fleet-invariance",
                detail: format!(
                    "fleet digest {:016x} under 2 threads / 3 shards != {:016x} under 1/1",
                    report2.digest, digest
                ),
                status: "ok".to_string(),
                digest,
                reliability,
            });
        }
    }
    Ok((digest, reliability))
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// Structurally simpler variants of `spec`, most aggressive first. Every
/// candidate is strictly smaller by construction (fewer components or a
/// shorter duration), so greedy acceptance terminates.
fn shrink_candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    if let Some(fleet) = &spec.fleet {
        // Whole-fleet simplifications first: drop the fleet, then shrink it.
        let mut single = spec.clone();
        single.fleet = None;
        out.push(single);
        if fleet.n_ues > 1 {
            let mut s = spec.clone();
            s.fleet.as_mut().expect("fleet").n_ues = fleet.n_ues / 2;
            out.push(s);
        }
        if !fleet.groups.is_empty() {
            let mut s = spec.clone();
            s.fleet.as_mut().expect("fleet").groups.clear();
            out.push(s);
            if fleet.groups.len() > 1 {
                let mut s = spec.clone();
                s.fleet.as_mut().expect("fleet").groups.truncate(1);
                out.push(s);
            }
        }
    }
    if let WorldSpec::Custom(w) = &spec.world {
        if !w.blockers.is_empty() {
            let mut s = spec.clone();
            if let WorldSpec::Custom(w) = &mut s.world {
                w.blockers.clear();
            }
            out.push(s);
            for i in 0..w.blockers.len() {
                let mut s = spec.clone();
                if let WorldSpec::Custom(w) = &mut s.world {
                    w.blockers.remove(i);
                }
                out.push(s);
            }
        }
        match w.traj {
            TrajSpec::Translation {
                x, y, facing_deg, ..
            }
            | TrajSpec::Static { x, y, facing_deg }
                if !matches!(w.traj, TrajSpec::Static { .. }) =>
            {
                let mut s = spec.clone();
                if let WorldSpec::Custom(w) = &mut s.world {
                    w.traj = TrajSpec::Static { x, y, facing_deg };
                }
                out.push(s);
            }
            TrajSpec::Rotation { .. } => {
                let mut s = spec.clone();
                if let WorldSpec::Custom(w) = &mut s.world {
                    w.traj = TrajSpec::Static {
                        x: 0.9,
                        y: 7.0,
                        facing_deg: 180.0,
                    };
                }
                out.push(s);
            }
            _ => {}
        }
        if w.duration_s > 0.3 {
            let mut s = spec.clone();
            if let WorldSpec::Custom(w) = &mut s.world {
                w.duration_s = (w.duration_s / 2.0).max(0.3);
            }
            out.push(s);
        }
        if w.max_bounces > 1 {
            let mut s = spec.clone();
            if let WorldSpec::Custom(w) = &mut s.world {
                w.max_bounces = 1;
            }
            out.push(s);
        }
    }
    if !spec.fault.is_inert() {
        let mut s = spec.clone();
        s.fault = FaultSchedule::none();
        out.push(s);
        // One component at a time.
        if !spec.fault.probe_loss.is_empty() {
            let mut s = spec.clone();
            s.fault.probe_loss.clear();
            out.push(s);
        }
        if spec.fault.stale_prob != 0.0 {
            let mut s = spec.clone();
            s.fault.stale_prob = 0.0;
            out.push(s);
        }
        if spec.fault.snr_glitch.is_some() {
            let mut s = spec.clone();
            s.fault.snr_glitch = None;
            out.push(s);
        }
        if !spec.fault.failed_elements.is_empty() {
            let mut s = spec.clone();
            s.fault.failed_elements.clear();
            out.push(s);
        }
        if spec.fault.gain_drift_db != 0.0 {
            let mut s = spec.clone();
            s.fault.gain_drift_db = 0.0;
            out.push(s);
        }
        if !spec.fault.unavailable.is_empty() {
            let mut s = spec.clone();
            s.fault.unavailable.clear();
            out.push(s);
        }
    }
    if !spec.impairment.is_inert() {
        let mut s = spec.clone();
        s.impairment = ImpairmentConfig::none();
        out.push(s);
    }
    out.retain(|s| s.validate().is_ok());
    out
}

/// Deterministic greedy shrink: repeatedly tries the structurally simpler
/// candidates and accepts the first one that still fails the *same*
/// oracle, until no candidate does. Returns the minimal spec and its
/// failure. Bounded — every accepted candidate strictly reduces the
/// spec's textual size, so the loop terminates.
pub fn shrink_spec(
    spec: &ScenarioSpec,
    failure: &FuzzFailure,
    opts: &OracleOptions,
) -> (ScenarioSpec, FuzzFailure) {
    let mut best = spec.clone();
    let mut best_failure = failure.clone();
    let mut best_len = best.spec_string().len();
    loop {
        let mut improved = false;
        for cand in shrink_candidates(&best) {
            let cand_len = cand.spec_string().len();
            if cand_len >= best_len {
                continue;
            }
            if let Err(f) = check_spec(&cand, opts) {
                if f.oracle == best_failure.oracle {
                    best = cand;
                    best_failure = f;
                    best_len = cand_len;
                    improved = true;
                    break;
                }
            }
        }
        if !improved {
            return (best, best_failure);
        }
    }
}

// ---------------------------------------------------------------------------
// The fuzz campaign
// ---------------------------------------------------------------------------

/// A shrunk, replayable counterexample.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The originally-generated failing spec.
    pub original: ScenarioSpec,
    /// The shrunk minimal spec.
    pub spec: ScenarioSpec,
    /// The minimal spec's oracle violation.
    pub failure: FuzzFailure,
    /// The replayable journal line for the minimal spec: `status`/`digest`
    /// reproduce under `replay`, and `message` names the failing oracle.
    pub entry: JournalEntry,
}

/// What one fuzz campaign did.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases_run: u32,
    /// Canonical spec strings of every generated case, in order — the
    /// corpus artifact CI uploads.
    pub corpus: Vec<String>,
    /// The first oracle violation, shrunk; `None` when all cases passed.
    pub counterexample: Option<Counterexample>,
}

/// The journal line a counterexample writes: the spec's cell identity with
/// the observed outcome and a `fuzz:{oracle}` message, parseable by
/// [`JournalEntry::parse`] and replayable by `replay --cell`/`--line`.
pub fn counterexample_entry(spec: &ScenarioSpec, failure: &FuzzFailure) -> JournalEntry {
    let mut entry = spec.journal_entry(
        failure.digest,
        failure.reliability,
        &format!("fuzz:{}: {}", failure.oracle, failure.detail),
    );
    entry.status = failure.status.clone();
    entry
}

/// Runs a bounded fuzz campaign: `cases` specs drawn deterministically
/// from `name` (the [`TestRng::from_name`] stream), each checked against
/// the oracles; the first violation is shrunk and returned. Same `name` +
/// same `cases` ⇒ the same specs, the same verdicts, bit for bit.
pub fn run_fuzz(name: &str, cases: u32, opts: &OracleOptions) -> FuzzReport {
    let strategy = arb_spec();
    let mut rng = TestRng::from_name(name);
    let mut report = FuzzReport::default();
    for _ in 0..cases {
        let spec = strategy.new_value(&mut rng);
        debug_assert!(spec.validate().is_ok(), "generator produced invalid spec");
        report.corpus.push(spec.spec_string());
        report.cases_run += 1;
        if let Err(failure) = check_spec(&spec, opts) {
            let (min_spec, min_failure) = shrink_spec(&spec, &failure, opts);
            let entry = counterexample_entry(&min_spec, &min_failure);
            report.counterexample = Some(Counterexample {
                original: spec,
                spec: min_spec,
                failure: min_failure,
                entry,
            });
            return report;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_specs_are_valid_and_round_trip() {
        let strategy = arb_spec();
        let mut rng = TestRng::from_name("fuzz-gen-validity");
        for _ in 0..64 {
            let spec = strategy.new_value(&mut rng);
            spec.validate().expect("generated spec must validate");
            let s = spec.spec_string();
            let back = ScenarioSpec::parse_spec(&s).expect("spec string parses back");
            assert_eq!(back, spec, "round-trip mismatch for {s}");
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strategy = arb_spec();
        let draw = || {
            let mut rng = TestRng::from_name("fuzz-determinism");
            (0..16)
                .map(|_| strategy.new_value(&mut rng).spec_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn recovery_horizon_accounts_for_scheduled_dark_time() {
        let mut spec = ScenarioSpec::single(WorldSpec::StaticWalker, "mmreliable", 1);
        assert_eq!(recovery_horizon_s(&spec), RECOVERY_HORIZON_S);
        spec.fault.unavailable.push((0.1, 0.3));
        spec.fault.probe_loss.push(ProbeLossWindow {
            start_s: 0.0,
            end_s: 0.05,
            loss_prob: 1.0,
        });
        let h = recovery_horizon_s(&spec);
        assert!((h - (RECOVERY_HORIZON_S + 0.2 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn shrink_candidates_are_strictly_simpler_and_valid() {
        let strategy = arb_spec();
        let mut rng = TestRng::from_name("fuzz-shrink-cands");
        for _ in 0..32 {
            let spec = strategy.new_value(&mut rng);
            for cand in shrink_candidates(&spec) {
                cand.validate().expect("shrink candidate must validate");
            }
        }
    }
}
