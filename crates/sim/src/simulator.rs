//! The slot-level link simulator.
//!
//! [`LinkSimulator`] plays one strategy against one dynamic channel. It
//! implements [`LinkFrontEnd`], and — crucially — **probes advance
//! simulated time** by their reference-signal airtime. A maintenance tick
//! that issues three CSI-RS probes costs 0.375 ms of link downtime; a
//! reactive 12-SSB re-scan costs 6 ms during which the channel keeps
//! moving and no data flows. Reliability and throughput then fall out of a
//! single per-slot record with no separate bookkeeping.

use crate::faults::FaultEvent;
use crate::impairments::ImpairmentEvent;
use crate::metrics::{RunCounters, RunEvent, RunResult, Sample};
use mmreliable::cancel::CancelToken;
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::snapshot::ChannelSnapshot;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, mw_from_dbm, SPEED_OF_LIGHT};
use mmwave_hotpath::hot_path;
use mmwave_phy::chanest::{ChannelSounder, ProbeObservation};
use mmwave_phy::mcs::McsTable;

/// Reusable per-slot scratch owned by [`LinkSimulator`] — the single home
/// of every buffer the steady-state slot loop touches (DESIGN.md §8).
///
/// Holds the [`ChannelSnapshot`] (rebuilt at most once per simulated
/// instant), the cached 33-point SNR evaluation comb, and the CSI scratch
/// the SNR metric writes into. After the buffers reach their high-water
/// mark during the first few slots, the data-plane slot loop performs no
/// heap allocation at all.
#[derive(Debug, Default)]
pub struct SlotWorkspace {
    /// The per-instant channel snapshot every reader shares.
    snapshot: ChannelSnapshot,
    /// Cached 33-point comb for [`LinkSimulator::true_snr_db`] (the grid
    /// is link-constant, so it is built once on first use).
    comb_freqs: Vec<f64>,
    /// CSI scratch for the SNR metric.
    csi: Vec<Complex64>,
}

/// The simulator: channel + radio + clock.
pub struct LinkSimulator {
    /// The time-varying environment.
    pub dynamic: DynamicChannel,
    /// Sounding front end (budget, grid, impairments).
    pub sounder: ChannelSounder,
    /// gNB array.
    pub geom: ArrayGeometry,
    /// UE receive side.
    pub rx: UeReceiver,
    /// MCS table for throughput mapping.
    pub mcs: McsTable,
    /// Noise source.
    pub rng: Rng64,
    /// Outage threshold, dB.
    pub outage_snr_db: f64,
    /// Data-slot duration (sampling resolution), seconds.
    pub slot_s: f64,
    t_s: f64,
    probes: usize,
    probe_airtime_s: f64,
    ws: SlotWorkspace,
    counters: RunCounters,
    cancel: CancelToken,
    /// Telemetry handle: probe spans and (via the run loop) per-slot
    /// traces. Disabled (free) by default.
    #[cfg(feature = "telemetry")]
    tracer: mmwave_telemetry::Tracer,
}

impl LinkSimulator {
    /// Creates a simulator at t = 0.
    pub fn new(
        dynamic: DynamicChannel,
        sounder: ChannelSounder,
        geom: ArrayGeometry,
        rx: UeReceiver,
        rng: Rng64,
    ) -> Self {
        Self {
            dynamic,
            sounder,
            geom,
            rx,
            mcs: McsTable::nr_table(),
            rng,
            outage_snr_db: 6.0,
            slot_s: 0.125e-3,
            t_s: 0.0,
            probes: 0,
            probe_airtime_s: 0.0,
            ws: SlotWorkspace::default(),
            counters: RunCounters::default(),
            cancel: CancelToken::new(),
            #[cfg(feature = "telemetry")]
            tracer: mmwave_telemetry::Tracer::disabled(),
        }
    }

    /// Installs a telemetry tracer. The run loop clones it into the
    /// strategy (which forwards it to the controller and lifecycle), so
    /// one installation covers every layer of a run. Compiled to a no-op
    /// without the `telemetry` feature.
    pub fn set_tracer(&mut self, tracer: mmwave_telemetry::Tracer) {
        #[cfg(feature = "telemetry")]
        {
            self.tracer = tracer;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = tracer;
    }

    /// The installed tracer (a cheap clone; disabled when none was
    /// installed or the `telemetry` feature is off).
    pub fn tracer(&self) -> mmwave_telemetry::Tracer {
        #[cfg(feature = "telemetry")]
        {
            self.tracer.clone()
        }
        #[cfg(not(feature = "telemetry"))]
        {
            mmwave_telemetry::Tracer::disabled()
        }
    }

    /// Deepest per-path blockage on the current workspace snapshot, dB —
    /// the run loop's blockage-severity telemetry. Reads the snapshot as
    /// is (no refresh): telemetry must never perturb the simulation's
    /// evaluation pattern.
    #[cfg(feature = "telemetry")]
    fn blockage_severity_db(&self) -> f64 {
        self.ws
            .snapshot
            .channel()
            .paths
            .iter()
            .map(|p| p.blockage_db)
            .fold(0.0, f64::max)
    }

    /// Current simulated time, seconds.
    pub fn now_s(&self) -> f64 {
        self.t_s
    }

    /// Installs the supervisor's cancellation token. The run loop and the
    /// controller poll it at their checkpoints (once per data slot, per
    /// maintenance tick, per training probe); a fresh simulator carries an
    /// inert token and never cancels.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = token;
    }

    /// The installed cancellation token (a clone observing shared state).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Hot-path counters accumulated so far (all-zero unless the
    /// `perf-counters` feature is enabled). The run loop resets them at
    /// the start of every run and copies them into the returned
    /// [`RunResult`].
    pub fn counters(&self) -> &RunCounters {
        &self.counters
    }

    /// Ensures the workspace snapshot is valid at the current clock,
    /// rebuilding it only when simulated time has advanced since the last
    /// read (the invalidation rule of DESIGN.md §8). Every consumer of the
    /// current channel — SNR metric, sounder, truth observer — goes
    /// through here, so the environment is evaluated at most once per
    /// simulated instant.
    #[hot_path]
    pub fn refresh_snapshot(&mut self) {
        if self.ws.snapshot.is_valid_at(self.t_s) {
            #[cfg(feature = "perf-counters")]
            {
                self.counters.snapshot_reuses += 1;
            }
            return;
        }
        self.ws
            .snapshot
            .rebuild(&self.dynamic, &self.geom, &self.rx, self.t_s);
        #[cfg(feature = "perf-counters")]
        {
            self.counters.snapshot_rebuilds += 1;
        }
    }

    /// The frozen channel at the current clock, served from the workspace
    /// snapshot (refreshed if needed) — the allocation-free replacement
    /// for `dynamic.channel_at(now)`.
    pub fn channel_now(&mut self) -> &GeometricChannel {
        self.refresh_snapshot();
        self.ws.snapshot.channel()
    }

    /// Noiseless wideband SNR (dB) the link would see right now under
    /// `weights` — the data-plane quality the MCS adapts to. Evaluated on a
    /// coarse 33-point comb across the occupied band (captures frequency
    /// selectivity at 1/100 the cost of the full grid). Takes `&mut self`
    /// because it reads the channel through the workspace snapshot,
    /// refreshing it if simulated time has advanced.
    #[hot_path]
    pub fn true_snr_db(&mut self, weights: &BeamWeights) -> f64 {
        self.refresh_snapshot();
        #[cfg(feature = "perf-counters")]
        {
            self.counters.snr_evals += 1;
        }
        if self.ws.snapshot.channel().paths.is_empty() {
            return -60.0;
        }
        if self.ws.comb_freqs.is_empty() {
            let half = self.sounder.grid.occupied_bw_hz() / 2.0;
            self.ws
                .comb_freqs
                .extend((0..33).map(|i| -half + 2.0 * half * i as f64 / 32.0));
        }
        self.ws
            .snapshot
            .csi_into(weights, &self.ws.comb_freqs, &mut self.ws.csi);
        let csi = &self.ws.csi;
        let mean_pow: f64 = csi.iter().map(|v| v.norm_sqr()).sum::<f64>() / csi.len() as f64;
        // Same scaling as the sounder: TX power spread across subcarriers
        // against per-subcarrier noise, with atmospheric absorption.
        let tx_mw = mw_from_dbm(self.sounder.budget.tx_power_dbm);
        let per_sc = tx_mw / self.sounder.grid.n_subcarriers as f64;
        let dist_m = self
            .ws
            .snapshot
            .channel()
            .paths
            .iter()
            .map(|p| p.tof_ns)
            .fold(f64::INFINITY, f64::min)
            * 1e-9
            * SPEED_OF_LIGHT;
        let atmo =
            mmwave_dsp::units::pow_from_db(-self.sounder.budget.atmospheric_absorption_db(dist_m));
        let noise = self.sounder.noise_power_mw();
        db_from_pow((mean_pow * per_sc * atmo / noise).max(1e-6)).max(-60.0)
    }

    /// Plays `strategy` for `duration_s`, giving it a maintenance tick every
    /// `tick_period_s` (the CSI-RS cadence). Returns the full run record.
    pub fn run(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
    ) -> RunResult {
        self.run_with_warmup(strategy, duration_s, tick_period_s, scenario_name, 0.0)
    }

    /// Like [`LinkSimulator::run`], but runs an unmeasured warm-up window
    /// first (initial beam training happens there, per the paper's
    /// protocol). The returned record covers warm-up + measurement; its
    /// metrics ignore the warm-up.
    pub fn run_with_warmup(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
        warmup_s: f64,
    ) -> RunResult {
        run_front_end(
            self,
            strategy,
            duration_s,
            tick_period_s,
            scenario_name,
            warmup_s,
        )
    }
}

/// A front-end stack the run loop can drive: the bare simulator, or any
/// chain of decorators (e.g. [`crate::faults::FaultInjector`]) bottoming
/// out in one. Decorators forward [`SimFrontEnd::sim`] and may transform
/// the data-plane weights and contribute fault events.
pub trait SimFrontEnd: LinkFrontEnd {
    /// The simulator at the bottom of the stack.
    fn sim(&self) -> &LinkSimulator;

    /// The simulator at the bottom of the stack, mutably.
    fn sim_mut(&mut self) -> &mut LinkSimulator;

    /// The weights the array actually radiates in *data* slots — fault
    /// layers apply element failures / gain drift here so hardware faults
    /// hit the data plane exactly as they hit probing.
    fn radiated_weights(&self, w: &BeamWeights) -> BeamWeights {
        let mut out = w.clone();
        self.apply_radiated_faults(&mut out);
        out
    }

    /// Write-into variant of [`SimFrontEnd::radiated_weights`]: overwrites
    /// `out` with the radiated weights, reusing its allocation. The run
    /// loop's per-slot entry point.
    fn radiated_weights_into(&self, w: &BeamWeights, out: &mut BeamWeights) {
        out.copy_from(w);
        self.apply_radiated_faults(out);
    }

    /// In-place hardware-fault transform both weight getters share.
    /// Decorators apply their own element failures / gain drift to `w`,
    /// then forward down the stack; the bare simulator radiates weights
    /// unchanged (the default no-op).
    fn apply_radiated_faults(&self, _w: &mut BeamWeights) {}

    /// Takes the fault events accumulated since the last drain.
    // xtask-allow(hot-path-closure): default for fault-free front ends; an empty Vec::new allocates nothing
    fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        Vec::new()
    }

    /// Takes the hardware-impairment annotations accumulated since the
    /// last drain.
    // xtask-allow(hot-path-closure): default for impairment-free front ends; an empty Vec::new allocates nothing
    fn drain_impairment_events(&mut self) -> Vec<ImpairmentEvent> {
        Vec::new()
    }
}

impl SimFrontEnd for LinkSimulator {
    fn sim(&self) -> &LinkSimulator {
        self
    }

    fn sim_mut(&mut self) -> &mut LinkSimulator {
        self
    }
}

/// The run loop as an explicit, resumable state machine.
///
/// [`run_front_end`] drives it to completion in one call — the single-link
/// path. The fleet scheduler instead interleaves many UEs by stepping each
/// one's `SlotLoop` to the next handler-pass boundary with
/// [`SlotLoop::advance_until`]: per-UE state (samples, events, weight
/// scratch, tick phase) lives here, so a paused UE resumes exactly where
/// it stopped and executes the identical iteration sequence a single
/// uninterrupted run would — stepping is control-flow slicing, never an
/// arithmetic change, which is what keeps a fleet of size 1 bit-identical
/// to the pre-fleet pipeline.
pub struct SlotLoop {
    /// Total simulated span: warm-up + measured window, seconds.
    total_s: f64,
    tick_period_s: f64,
    warmup_s: f64,
    slot_s: f64,
    scenario_name: String,
    samples: Vec<Sample>,
    events: Vec<RunEvent>,
    // Per-slot weight scratch: allocated once at construction, reused
    // every slot.
    w_data: BeamWeights,
    w_rad: BeamWeights,
    next_tick: f64,
    done: bool,
    #[cfg(feature = "telemetry")]
    tracer: mmwave_telemetry::Tracer,
    #[cfg(feature = "telemetry")]
    slot_idx: u64,
}

impl SlotLoop {
    /// Prepares a run over `h` × `strategy`: resets the front end's
    /// counters, installs the tracer across the strategy stack, and
    /// allocates the per-run buffers at their high-water capacity.
    pub fn new<H: SimFrontEnd>(
        h: &mut H,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
        warmup_s: f64,
    ) -> Self {
        assert!(duration_s > 0.0 && tick_period_s > 0.0 && warmup_s >= 0.0);
        let total_s = warmup_s + duration_s;
        let slot_s = h.sim().slot_s;
        h.sim_mut().counters = RunCounters::default();
        // One tracer covers every layer: clear its histograms for this run
        // and hand it to the strategy (which forwards it to the controller
        // and lifecycle machine).
        #[cfg(feature = "telemetry")]
        let tracer = {
            let tracer = h.sim().tracer();
            tracer.reset();
            strategy.set_tracer(tracer.clone());
            tracer
        };
        #[cfg(not(feature = "telemetry"))]
        let _ = &strategy;
        let samples = Vec::with_capacity(
            (total_s / slot_s) as usize + (total_s / tick_period_s) as usize + 16,
        );
        let n_elements = h.sim().geom.num_elements();
        Self {
            total_s,
            tick_period_s,
            warmup_s,
            slot_s,
            scenario_name: scenario_name.to_string(),
            samples,
            events: Vec::new(),
            w_data: BeamWeights::muted(n_elements),
            w_rad: BeamWeights::muted(n_elements),
            next_tick: 0.0,
            done: true, // set false below; placates the uninit lint
            #[cfg(feature = "telemetry")]
            tracer,
            #[cfg(feature = "telemetry")]
            slot_idx: 0,
        }
        .started()
    }

    fn started(mut self) -> Self {
        self.done = false;
        self
    }

    /// True once the run has covered its full simulated span.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Samples recorded so far (the fleet's intent derivation reads the
    /// tail of this between passes).
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Total simulated span (warm-up + measurement), seconds.
    pub fn total_s(&self) -> f64 {
        self.total_s
    }

    /// Runs loop iterations until simulated time reaches `t_end_s` (or the
    /// run's end, whichever is first) and reports whether the run is done.
    /// Passing `f64::INFINITY` runs to completion. Iterations are executed
    /// in exactly the order an uninterrupted run would execute them.
    #[hot_path]
    pub fn advance_until<H: SimFrontEnd>(
        &mut self,
        h: &mut H,
        strategy: &mut dyn BeamStrategy,
        t_end_s: f64,
    ) -> bool {
        while !self.done && h.sim().t_s < self.total_s && h.sim().t_s < t_end_s {
            // Supervisor checkpoint: a cancelled run (deadline or tick
            // budget) unwinds here with the CancelUnwind payload rather
            // than finishing the sweep — the campaign layer classifies
            // that as a timeout.
            h.sim().cancel.checkpoint();
            // Maintenance tick: the strategy may probe (advancing time).
            if h.sim().t_s >= self.next_tick {
                h.sim().cancel.note_tick();
                strategy.observe_truth(h.sim_mut().channel_now());
                #[cfg(feature = "perf-counters")]
                {
                    h.sim_mut().counters.ticks += 1;
                }
                let t0 = h.sim().t_s;
                #[cfg(feature = "telemetry")]
                let clock = self.tracer.begin();
                strategy.on_tick(h, t0);
                #[cfg(feature = "telemetry")]
                self.tracer
                    .end(clock, mmwave_telemetry::Stage::TickCompute, t0);
                self.events.extend(
                    strategy
                        .drain_transitions()
                        .into_iter()
                        .map(RunEvent::Transition),
                );
                self.events
                    .extend(h.drain_fault_events().into_iter().map(RunEvent::Fault));
                self.events.extend(
                    h.drain_impairment_events()
                        .into_iter()
                        .map(RunEvent::Impairment),
                );
                if h.sim().t_s > t0 {
                    self.samples.push(Sample {
                        t_s: t0,
                        dur_s: h.sim().t_s - t0,
                        snr_db: f64::NAN,
                        probing: true,
                    });
                    #[cfg(feature = "telemetry")]
                    self.tracer.slot(mmwave_telemetry::SlotTrace {
                        slot: self.slot_idx,
                        t_s: t0,
                        snr_db: f64::NAN,
                        blockage_db: h.sim().blockage_severity_db(),
                        probing: true,
                        outage: false,
                    });
                }
                while self.next_tick <= h.sim().t_s {
                    self.next_tick += self.tick_period_s;
                }
                // A retrain scan can probe past the end of the run (heavy
                // retraining under faults/impairments): there is no data
                // slot left to radiate, and emitting one would record a
                // non-positive interval.
                if h.sim().t_s >= self.total_s {
                    self.done = true;
                    break;
                }
            }
            // Data slot under the strategy's current weights (as actually
            // radiated by the possibly-faulted hardware). The snapshot
            // behind `channel_now` stays valid through the whole slot —
            // the truth observer, fault layer, and SNR metric all read the
            // same frozen channel without re-evaluating the environment.
            #[cfg(feature = "telemetry")]
            let clock = self.tracer.begin();
            strategy.observe_truth(h.sim_mut().channel_now());
            strategy.weights_into(&mut self.w_data);
            h.radiated_weights_into(&self.w_data, &mut self.w_rad);
            let snr = h.sim_mut().true_snr_db(&self.w_rad);
            #[cfg(feature = "telemetry")]
            self.tracer
                .end(clock, mmwave_telemetry::Stage::DataSlot, h.sim().t_s);
            #[cfg(feature = "perf-counters")]
            {
                h.sim_mut().counters.data_slots += 1;
            }
            let t_s = h.sim().t_s;
            let dur = self
                .slot_s
                .min(self.total_s - t_s)
                .min((self.next_tick - t_s).max(1e-9));
            self.samples.push(Sample {
                t_s,
                dur_s: dur,
                snr_db: snr,
                probing: false,
            });
            #[cfg(feature = "telemetry")]
            {
                self.tracer.slot(mmwave_telemetry::SlotTrace {
                    slot: self.slot_idx,
                    t_s,
                    snr_db: snr,
                    blockage_db: h.sim().blockage_severity_db(),
                    probing: false,
                    outage: snr < h.sim().outage_snr_db,
                });
                self.slot_idx += 1;
            }
            h.sim_mut().t_s += dur;
        }
        if h.sim().t_s >= self.total_s {
            self.done = true;
        }
        self.done
    }

    /// Final drains and record assembly. Valid at any point (the campaign
    /// layer's cancellation unwinds instead of finishing), but the normal
    /// caller steps the loop to completion first.
    pub fn finish<H: SimFrontEnd>(
        mut self,
        h: &mut H,
        strategy: &mut dyn BeamStrategy,
    ) -> RunResult {
        self.events.extend(
            strategy
                .drain_transitions()
                .into_iter()
                .map(RunEvent::Transition),
        );
        self.events
            .extend(h.drain_fault_events().into_iter().map(RunEvent::Fault));
        self.events.extend(
            h.drain_impairment_events()
                .into_iter()
                .map(RunEvent::Impairment),
        );
        let sim = h.sim();
        RunResult {
            strategy: strategy.name().to_string(),
            scenario: self.scenario_name,
            samples: self.samples,
            bandwidth_hz: sim.sounder.grid.occupied_bw_hz(),
            outage_snr_db: sim.outage_snr_db,
            probes: sim.probes,
            probe_airtime_s: sim.probe_airtime_s,
            measure_from_s: self.warmup_s,
            events: self.events,
            counters: sim.counters,
            #[cfg(feature = "telemetry")]
            latency: sim.tracer.latency(),
            #[cfg(not(feature = "telemetry"))]
            latency: mmwave_telemetry::RunLatency::default(),
        }
    }
}

/// The run loop, generic over the front-end stack: plays `strategy` for
/// `warmup_s + duration_s`, ticking it every `tick_period_s`, recording
/// per-slot samples plus every lifecycle transition and injected fault
/// into the returned [`RunResult`]. A thin driver over [`SlotLoop`].
pub fn run_front_end<H: SimFrontEnd>(
    h: &mut H,
    strategy: &mut dyn BeamStrategy,
    duration_s: f64,
    tick_period_s: f64,
    scenario_name: &str,
    warmup_s: f64,
) -> RunResult {
    let mut sl = SlotLoop::new(
        h,
        strategy,
        duration_s,
        tick_period_s,
        scenario_name,
        warmup_s,
    );
    sl.advance_until(h, strategy, f64::INFINITY);
    sl.finish(h, strategy)
}

impl LinkFrontEnd for LinkSimulator {
    fn geometry(&self) -> &ArrayGeometry {
        &self.geom
    }

    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation {
        let mut obs = ProbeObservation::empty();
        self.probe_kind_into(weights, kind, &mut obs);
        obs
    }

    fn probe_kind_into(
        &mut self,
        weights: &BeamWeights,
        kind: ProbeKind,
        out: &mut ProbeObservation,
    ) {
        #[cfg(feature = "telemetry")]
        let clock = self.tracer.begin();
        self.refresh_snapshot();
        self.sounder
            .probe_snapshot_into(&mut self.ws.snapshot, weights, &mut self.rng, out);
        self.t_s += kind.airtime_s();
        self.probes += 1;
        self.probe_airtime_s += kind.airtime_s();
        #[cfg(feature = "telemetry")]
        {
            self.tracer
                .end(clock, mmwave_telemetry::Stage::ProbeHandling, self.t_s);
            if self.tracer.wants_events() {
                self.tracer.event(mmwave_telemetry::TraceEvent::Probe {
                    t_s: self.t_s,
                    kind: match kind {
                        ProbeKind::Ssb => "ssb",
                        ProbeKind::CsiRs => "csi-rs",
                    },
                    snr_db: out.snr_db(),
                });
            }
        }
    }

    fn wait(&mut self, dur_s: f64) {
        let d = dur_s.max(0.0);
        self.t_s += d;
        self.probe_airtime_s += d;
    }

    fn now_s(&self) -> f64 {
        self.t_s
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.is_cancelled()
    }

    fn probes_used(&self) -> usize {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::config::MmReliableConfig;
    use mmreliable::controller::MmReliableController;
    use mmwave_baselines::strategy::MmReliableStrategy;
    use mmwave_baselines::{OracleMrt, SingleBeamReactive};
    use mmwave_channel::blockage::BlockageProcess;
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_channel::mobility::{Pose, Trajectory};
    use mmwave_dsp::units::FC_28GHZ;

    fn static_sim(seed: u64) -> LinkSimulator {
        let dynamic = DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Static {
                pose: Pose {
                    pos: v2(0.9, 7.0),
                    facing_deg: 180.0,
                },
            },
            BlockageProcess::none(),
        );
        LinkSimulator::new(
            dynamic,
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    #[test]
    fn probes_advance_time() {
        let mut sim = static_sim(1);
        let w = mmwave_array::steering::single_beam(&sim.geom, 0.0);
        assert_eq!(sim.now_s(), 0.0);
        sim.probe_kind(&w, ProbeKind::Ssb);
        assert!((sim.now_s() - 0.5e-3).abs() < 1e-12);
        sim.probe(&w);
        assert!((sim.now_s() - 0.625e-3).abs() < 1e-12);
        assert_eq!(sim.probes_used(), 2);
    }

    #[test]
    fn static_run_with_mmreliable_is_reliable() {
        let mut sim = static_sim(2);
        let mut s =
            MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
        let r = sim.run(&mut s, 0.3, 20e-3, "static");
        // Establishment costs ~33 ms of the 300 ms run; everything after
        // must be up.
        assert!(r.reliability() > 0.85, "reliability {}", r.reliability());
        assert!(r.mean_snr_db() > 20.0, "snr {}", r.mean_snr_db());
        assert!(r.probes > 64);
    }

    #[test]
    fn run_duration_accounts_everything() {
        let mut sim = static_sim(3);
        let mut s = SingleBeamReactive::new(Default::default());
        let r = sim.run(&mut s, 0.2, 20e-3, "static");
        assert!(
            (r.duration_s() - 0.2).abs() < 2e-3,
            "dur {}",
            r.duration_s()
        );
        // Probing samples exist (initial scan).
        assert!(r.samples.iter().any(|s| s.probing));
        assert!(r.probing_overhead() > 0.0);
    }

    #[test]
    fn oracle_needs_no_probes_and_wins() {
        let mut sim = static_sim(4);
        let mut oracle = OracleMrt::ideal(ArrayGeometry::paper_8x8(), UeReceiver::Omni);
        let r_oracle = sim.run(&mut oracle, 0.1, 20e-3, "static");
        assert_eq!(r_oracle.probes, 0);
        assert_eq!(r_oracle.reliability(), 1.0);
        let mut sim2 = static_sim(4);
        let mut reactive = SingleBeamReactive::new(Default::default());
        let r_re = sim2.run(&mut reactive, 0.1, 20e-3, "static");
        assert!(r_oracle.mean_snr_db() >= r_re.mean_snr_db() - 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = static_sim(seed);
            let mut s = SingleBeamReactive::new(Default::default());
            let r = sim.run(&mut s, 0.1, 20e-3, "static");
            (r.reliability(), r.mean_snr_db(), r.probes)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn true_snr_matches_probe_snr() {
        let mut sim = static_sim(5);
        let w = mmwave_array::steering::single_beam(&sim.geom, 7.3);
        let true_snr = sim.true_snr_db(&w);
        let obs = sim.probe(&w);
        assert!(
            (true_snr - obs.snr_db()).abs() < 1.5,
            "true {true_snr} vs probed {}",
            obs.snr_db()
        );
    }
}
