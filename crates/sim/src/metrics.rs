//! Evaluation metrics: reliability, throughput, and their product.
//!
//! The paper's definitions (§3.1, §6.2):
//!
//! - **Reliability** = fraction of time the link is available for
//!   communication (Eq. 1). Time spent below the outage SNR *and* time
//!   consumed by beam-training/probing both count as unavailable.
//! - **Throughput** — MCS-mapped link rate, averaged over the whole run
//!   (probing time contributes zero).
//! - **Throughput-reliability product** — the paper's combined headline
//!   metric (mmReliable improves it 2.3× over the best reactive baseline).

use crate::faults::FaultEvent;
use crate::impairments::ImpairmentEvent;
use mmreliable::linkstate::{LinkStateKind, Transition};
use mmwave_phy::mcs::McsTable;
use mmwave_telemetry::RunLatency;

/// Escapes one CSV field per RFC 4180: fields containing a comma, a double
/// quote, or a line break are wrapped in double quotes with embedded quotes
/// doubled; everything else passes through unchanged. Every free-text field
/// the run records emit (strategy and scenario names, event payloads) goes
/// through here so a name like `widebeam, 3 dB` cannot shear a row.
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Parses one RFC 4180 CSV record back into its fields: the inverse of
/// joining [`csv_field`]-escaped fields with commas. Quoted fields may
/// contain commas, doubled quotes, and line breaks, so a record with an
/// embedded newline spans multiple physical lines — pass the whole record.
/// Used by the results tooling (and its tests) to guarantee every row the
/// harness writes machine-reads back to the original fields.
pub fn csv_parse_row(record: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    cur.push('"');
                }
                '"' => in_quotes = false,
                c => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                c => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// One typed entry in a run's event log: a lifecycle transition of the
/// strategy's link state machine, a fault the injection layer hit the
/// front end with, or a hardware-impairment annotation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunEvent {
    /// A link lifecycle transition.
    Transition(Transition),
    /// An injected front-end fault.
    Fault(FaultEvent),
    /// A hardware-impairment annotation (stage enabled, PA saturation,
    /// ADC clipping).
    Impairment(ImpairmentEvent),
}

impl RunEvent {
    /// Event timestamp, seconds.
    pub fn t_s(&self) -> f64 {
        match self {
            RunEvent::Transition(tr) => tr.t_s,
            RunEvent::Fault(f) => f.t_s,
            RunEvent::Impairment(im) => im.t_s,
        }
    }
}

/// Hot-path execution counters for one run.
///
/// Populated only when the `perf-counters` feature is enabled; all-zero
/// otherwise. Counting is pure observability — enabling the feature never
/// changes simulation results. The interesting ratio is
/// `snapshot_reuses : snapshot_rebuilds`: every reuse is a full channel
/// re-evaluation (scene trace + per-path steering) that the pre-snapshot
/// dataflow paid and the workspace dataflow does not.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunCounters {
    /// Data slots simulated.
    pub data_slots: u64,
    /// Maintenance ticks delivered to the strategy.
    pub ticks: u64,
    /// Channel snapshot rebuilds (one per distinct simulated instant).
    pub snapshot_rebuilds: u64,
    /// Snapshot reads served from cache without re-evaluating the channel.
    pub snapshot_reuses: u64,
    /// Wideband true-SNR evaluations.
    pub snr_evals: u64,
}

/// One recorded interval of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Interval start, seconds.
    pub t_s: f64,
    /// Interval duration, seconds.
    pub dur_s: f64,
    /// Link SNR during the interval, dB (NaN while probing).
    pub snr_db: f64,
    /// True when the interval was consumed by reference-signal probing.
    pub probing: bool,
}

/// The full record of one simulated run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Strategy display name.
    pub strategy: String,
    /// Scenario name.
    pub scenario: String,
    /// Per-interval record, in time order.
    pub samples: Vec<Sample>,
    /// Link bandwidth used for throughput mapping, Hz.
    pub bandwidth_hz: f64,
    /// Outage threshold, dB.
    pub outage_snr_db: f64,
    /// Total probes issued.
    pub probes: usize,
    /// Total probing airtime, seconds.
    pub probe_airtime_s: f64,
    /// Metrics ignore samples before this instant (warm-up window in which
    /// every scheme performs its initial beam training, per the paper's
    /// protocol).
    pub measure_from_s: f64,
    /// Typed event log: every lifecycle transition the strategy reported
    /// and every fault the injection layer produced, in time order.
    pub events: Vec<RunEvent>,
    /// Hot-path execution counters (all-zero unless the `perf-counters`
    /// feature is enabled).
    pub counters: RunCounters,
    /// Per-stage latency percentiles (p50/p95/p99/max of tick compute,
    /// probe handling, superres fit, weight synthesis, data slots).
    /// All-zero unless the `telemetry` feature is enabled and a tracer was
    /// installed. Wall-clock derived, so deliberately **excluded** from
    /// [`RunResult::digest`] and [`RunResult::validate`] — two
    /// bit-identical runs may time differently.
    pub latency: RunLatency,
}

impl RunResult {
    /// Samples inside the measurement window.
    fn measured(&self) -> impl Iterator<Item = &Sample> {
        self.samples
            .iter()
            .filter(move |s| s.t_s >= self.measure_from_s)
    }

    /// Total measured duration, seconds.
    pub fn duration_s(&self) -> f64 {
        self.measured().map(|s| s.dur_s).sum()
    }

    /// Reliability per paper Eq. 1: available time / total time.
    pub fn reliability(&self) -> f64 {
        let total = self.duration_s();
        if total <= 0.0 {
            return 0.0;
        }
        let up: f64 = self
            .measured()
            .filter(|s| !s.probing && s.snr_db >= self.outage_snr_db)
            .map(|s| s.dur_s)
            .sum();
        up / total
    }

    /// Mean throughput over the run, bits/s (probing intervals carry 0).
    pub fn mean_throughput_bps(&self, mcs: &McsTable) -> f64 {
        let total = self.duration_s();
        if total <= 0.0 {
            return 0.0;
        }
        let bits: f64 = self
            .measured()
            .filter(|s| !s.probing)
            .map(|s| mcs.throughput_bps(s.snr_db, self.bandwidth_hz, 0.0) * s.dur_s)
            .sum();
        bits / total
    }

    /// Mean spectral efficiency, bits/s/Hz.
    pub fn mean_se(&self, mcs: &McsTable) -> f64 {
        self.mean_throughput_bps(mcs) / self.bandwidth_hz
    }

    /// The paper's combined metric: reliability × mean throughput (bits/s).
    pub fn throughput_reliability_product(&self, mcs: &McsTable) -> f64 {
        self.reliability() * self.mean_throughput_bps(mcs)
    }

    /// Fraction of airtime spent probing.
    pub fn probing_overhead(&self) -> f64 {
        let total = self.duration_s();
        if total <= 0.0 {
            return 0.0;
        }
        self.probe_airtime_s / total
    }

    /// Mean SNR over measured data intervals, dB.
    pub fn mean_snr_db(&self) -> f64 {
        let data: Vec<&Sample> = self.measured().filter(|s| !s.probing).collect();
        if data.is_empty() {
            return f64::NAN;
        }
        let dur: f64 = data.iter().map(|s| s.dur_s).sum();
        data.iter().map(|s| s.snr_db * s.dur_s).sum::<f64>() / dur
    }

    /// SNR time series `(t, snr_db)` over measured data intervals.
    pub fn snr_series(&self) -> Vec<(f64, f64)> {
        self.measured()
            .filter(|s| !s.probing)
            .map(|s| (s.t_s, s.snr_db))
            .collect()
    }

    /// Throughput time series `(t, bps)` over measured data intervals.
    pub fn throughput_series(&self, mcs: &McsTable) -> Vec<(f64, f64)> {
        self.measured()
            .filter(|s| !s.probing)
            .map(|s| (s.t_s, mcs.throughput_bps(s.snr_db, self.bandwidth_hz, 0.0)))
            .collect()
    }

    /// Lifecycle transitions recorded during the run, in time order.
    pub fn transitions(&self) -> impl Iterator<Item = &Transition> {
        self.events.iter().filter_map(|e| match e {
            RunEvent::Transition(tr) => Some(tr),
            _ => None,
        })
    }

    /// Injected faults recorded during the run, in time order.
    pub fn faults(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter_map(|e| match e {
            RunEvent::Fault(f) => Some(f),
            _ => None,
        })
    }

    /// Hardware-impairment annotations recorded during the run, in time
    /// order.
    pub fn impairments(&self) -> impl Iterator<Item = &ImpairmentEvent> {
        self.events.iter().filter_map(|e| match e {
            RunEvent::Impairment(im) => Some(im),
            _ => None,
        })
    }

    /// Number of re-training attempts the strategy launched after the
    /// measurement window opened (entries into the `Recovering` state) —
    /// the quantity the bounded-retry guarantees cap.
    pub fn retrain_attempts(&self) -> usize {
        self.transitions()
            .filter(|tr| tr.t_s >= self.measure_from_s && tr.to.kind() == LinkStateKind::Recovering)
            .count()
    }

    /// Serializes the event log as CSV (`t_s,class,detail`). Free-text
    /// payloads are escaped via [`csv_field`] — a transition cause whose
    /// debug form contains commas stays one field.
    pub fn events_csv(&self) -> String {
        let mut out = String::from("t_s,class,detail\n");
        for e in &self.events {
            match e {
                RunEvent::Transition(tr) => {
                    let detail = format!("{}->{} ({:?})", tr.from.kind(), tr.to.kind(), tr.cause);
                    out.push_str(&format!(
                        "{:.6},transition,{}\n",
                        tr.t_s,
                        csv_field(&detail)
                    ));
                }
                RunEvent::Fault(f) => out.push_str(&format!(
                    "{:.6},fault,{}\n",
                    f.t_s,
                    csv_field(&f.kind.to_string())
                )),
                RunEvent::Impairment(im) => out.push_str(&format!(
                    "{:.6},impairment,{}\n",
                    im.t_s,
                    csv_field(&im.kind.to_string())
                )),
            }
        }
        out
    }

    /// Structural sanity check of a completed run record, used by the
    /// campaign supervisor to classify a run that *finished* but produced
    /// garbage (a `Validation` failure — not retryable, since it would
    /// reproduce deterministically).
    pub fn validate(&self) -> Result<(), String> {
        if self.samples.is_empty() {
            return Err("run produced no samples".into());
        }
        if !(self.bandwidth_hz.is_finite() && self.bandwidth_hz > 0.0) {
            return Err(format!("non-positive bandwidth {}", self.bandwidth_hz));
        }
        if !self.probe_airtime_s.is_finite() || self.probe_airtime_s < 0.0 {
            return Err(format!("bad probe airtime {}", self.probe_airtime_s));
        }
        let mut t_prev = f64::NEG_INFINITY;
        for (i, s) in self.samples.iter().enumerate() {
            if !s.t_s.is_finite() || !s.dur_s.is_finite() || s.dur_s <= 0.0 {
                return Err(format!(
                    "sample {i} has bad interval (t={} dur={})",
                    s.t_s, s.dur_s
                ));
            }
            if s.t_s < t_prev {
                return Err(format!("sample {i} out of time order (t={})", s.t_s));
            }
            if !s.probing && !s.snr_db.is_finite() {
                return Err(format!("data sample {i} has non-finite SNR"));
            }
            t_prev = s.t_s;
        }
        // The log merges independently-ordered streams (lifecycle
        // transitions from the simulator, fault events from the injector,
        // impairment annotations from the impairment layer), so time order
        // is required per class, not globally.
        let (mut tr_prev, mut f_prev, mut im_prev) =
            (f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        for (i, e) in self.events.iter().enumerate() {
            if !e.t_s().is_finite() {
                return Err(format!("event {i} has non-finite time"));
            }
            let prev = match e {
                RunEvent::Transition(_) => &mut tr_prev,
                RunEvent::Fault(_) => &mut f_prev,
                RunEvent::Impairment(_) => &mut im_prev,
            };
            if e.t_s() < *prev {
                return Err(format!("event {i} out of time order (t={})", e.t_s()));
            }
            *prev = e.t_s();
        }
        Ok(())
    }

    /// A 64-bit FNV-1a digest over every behaviour-bearing field of the
    /// record — sample bit patterns, event log, probe accounting. Two runs
    /// digest equal iff they are bit-identical, which is how the campaign
    /// journal detects divergence on resume and how `replay` proves a
    /// reproduced failure matches the recorded one.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        struct Fnv(u64);
        impl Fnv {
            fn bytes(&mut self, b: &[u8]) {
                for &x in b {
                    self.0 = (self.0 ^ x as u64).wrapping_mul(PRIME);
                }
            }
            fn f64(&mut self, v: f64) {
                self.bytes(&v.to_bits().to_le_bytes());
            }
            fn u64(&mut self, v: u64) {
                self.bytes(&v.to_le_bytes());
            }
        }
        let mut h = Fnv(OFFSET);
        h.bytes(self.strategy.as_bytes());
        h.bytes(self.scenario.as_bytes());
        h.u64(self.samples.len() as u64);
        for s in &self.samples {
            h.f64(s.t_s);
            h.f64(s.dur_s);
            h.f64(s.snr_db);
            h.u64(s.probing as u64);
        }
        h.f64(self.bandwidth_hz);
        h.f64(self.outage_snr_db);
        h.u64(self.probes as u64);
        h.f64(self.probe_airtime_s);
        h.f64(self.measure_from_s);
        h.u64(self.events.len() as u64);
        for e in &self.events {
            h.f64(e.t_s());
            h.bytes(format!("{e:?}").as_bytes());
        }
        h.0
    }

    /// Serializes the per-interval record as CSV
    /// (`t_s,dur_s,snr_db,probing`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_s,dur_s,snr_db,probing\n");
        for s in &self.samples {
            out.push_str(&format!(
                "{:.6},{:.6},{:.2},{}\n",
                s.t_s, s.dur_s, s.snr_db, s.probing as u8
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(samples: Vec<Sample>) -> RunResult {
        RunResult {
            strategy: "test".into(),
            scenario: "unit".into(),
            samples,
            bandwidth_hz: 400e6,
            outage_snr_db: 6.0,
            probes: 0,
            probe_airtime_s: 0.0,
            measure_from_s: 0.0,
            events: Vec::new(),
            counters: RunCounters::default(),
            latency: RunLatency::default(),
        }
    }

    fn s(t: f64, dur: f64, snr: f64, probing: bool) -> Sample {
        Sample {
            t_s: t,
            dur_s: dur,
            snr_db: snr,
            probing,
        }
    }

    #[test]
    fn csv_row_with_quotes_commas_newlines_round_trips() {
        // Satellite guarantee: any free-text field the harness writes into
        // a results CSV machine-reads back to the original bytes.
        let nasty = [
            "plain",
            "comma, separated",
            "has \"quotes\" inside",
            "line\nbreak",
            "crlf\r\nbreak",
            "all: \"q\", comma, \nnewline",
            "",
            "trailing,",
        ];
        let record = nasty
            .iter()
            .map(|f| csv_field(f))
            .collect::<Vec<_>>()
            .join(",");
        let parsed = csv_parse_row(&record);
        assert_eq!(parsed.len(), nasty.len());
        for (orig, back) in nasty.iter().zip(&parsed) {
            assert_eq!(orig, back, "field must round-trip");
        }
        // And a realistic results row shape: name fields escaped, numeric
        // fields bare.
        let row = format!(
            "{},{},{:.4},{:.1}",
            csv_field("widebeam, 3 dB"),
            csv_field("scenario \"A\""),
            0.9714,
            1432.5
        );
        assert_eq!(
            csv_parse_row(&row),
            vec!["widebeam, 3 dB", "scenario \"A\"", "0.9714", "1432.5"]
        );
    }

    #[test]
    fn reliability_counts_outage_and_probing() {
        let r = mk(vec![
            s(0.0, 0.25, 20.0, false),     // up
            s(0.25, 0.25, 3.0, false),     // outage
            s(0.5, 0.25, 20.0, false),     // up
            s(0.75, 0.25, f64::NAN, true), // probing
        ]);
        assert!((r.reliability() - 0.5).abs() < 1e-12);
        assert!((r.duration_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_run_reliability_one() {
        let r = mk(vec![s(0.0, 1.0, 25.0, false)]);
        assert_eq!(r.reliability(), 1.0);
    }

    #[test]
    fn throughput_zero_in_outage_and_probing() {
        let mcs = McsTable::nr_table();
        let r = mk(vec![
            s(0.0, 0.5, 3.0, false),     // outage → 0 rate
            s(0.5, 0.5, f64::NAN, true), // probing → excluded
        ]);
        assert_eq!(r.mean_throughput_bps(&mcs), 0.0);
    }

    #[test]
    fn throughput_averages_over_total_time() {
        let mcs = McsTable::nr_table();
        // Half the time at 20 dB, half probing: mean = rate(20 dB)/2.
        let r = mk(vec![s(0.0, 0.5, 20.0, false), s(0.5, 0.5, f64::NAN, true)]);
        let full = mcs.throughput_bps(20.0, 400e6, 0.0);
        assert!((r.mean_throughput_bps(&mcs) - full / 2.0).abs() < 1e-6);
    }

    #[test]
    fn product_combines_both() {
        let mcs = McsTable::nr_table();
        let r = mk(vec![s(0.0, 0.5, 20.0, false), s(0.5, 0.5, 3.0, false)]);
        let expect = 0.5 * r.mean_throughput_bps(&mcs);
        assert!((r.throughput_reliability_product(&mcs) - expect).abs() < 1e-6);
    }

    #[test]
    fn mean_snr_weighted_by_duration() {
        let r = mk(vec![s(0.0, 0.75, 20.0, false), s(0.75, 0.25, 8.0, false)]);
        assert!((r.mean_snr_db() - 17.0).abs() < 1e-12);
    }

    #[test]
    fn csv_shape() {
        let r = mk(vec![s(0.0, 0.1, 12.0, false)]);
        let csv = r.to_csv();
        assert!(csv.starts_with("t_s,dur_s,snr_db,probing\n"));
        assert!(csv.contains("0.000000,0.100000,12.00,0"));
    }

    #[test]
    fn empty_run_is_safe() {
        let r = mk(Vec::new());
        assert_eq!(r.reliability(), 0.0);
        assert!(r.mean_snr_db().is_nan());
    }

    #[test]
    fn csv_field_escapes_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field(""), "");
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let r = mk(vec![s(0.0, 0.1, 12.0, false)]);
        assert_eq!(r.digest(), r.digest(), "digest is deterministic");
        let mut r2 = r.clone();
        r2.samples[0].snr_db += 1e-12;
        assert_ne!(r.digest(), r2.digest(), "one ULP flips the digest");
        let mut r3 = r.clone();
        r3.strategy = "other".into();
        assert_ne!(r.digest(), r3.digest());
    }

    #[test]
    fn validate_catches_structural_garbage() {
        assert!(mk(vec![s(0.0, 0.1, 12.0, false)]).validate().is_ok());
        assert!(mk(Vec::new()).validate().is_err(), "no samples");
        let bad_dur = mk(vec![s(0.0, 0.0, 12.0, false)]);
        assert!(bad_dur.validate().is_err(), "zero duration");
        let out_of_order = mk(vec![s(0.5, 0.1, 12.0, false), s(0.0, 0.1, 12.0, false)]);
        assert!(out_of_order.validate().is_err(), "time order");
        let nan_data = mk(vec![s(0.0, 0.1, f64::NAN, false)]);
        assert!(nan_data.validate().is_err(), "NaN on a data slot");
        // NaN while probing is the recorded convention, not garbage.
        let nan_probe = mk(vec![s(0.0, 0.1, f64::NAN, true)]);
        assert!(nan_probe.validate().is_ok());
    }
}
