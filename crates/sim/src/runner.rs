//! Seeded multi-run experiment sweeps.
//!
//! The paper's end-to-end numbers aggregate ~100 repetitions per
//! configuration (§6.2). [`run_many`] plays one strategy family over many
//! seeded scenario instances across OS threads and aggregates reliability,
//! throughput, and the throughput-reliability product.

use crate::metrics::RunResult;
use crate::scenario::Scenario;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_dsp::stats;
use mmwave_phy::mcs::McsTable;

/// Aggregated statistics over a batch of runs.
#[derive(Clone, Debug)]
pub struct Aggregate {
    /// Strategy name.
    pub strategy: String,
    /// Scenario name.
    pub scenario: String,
    /// Per-run reliability values.
    pub reliability: Vec<f64>,
    /// Per-run mean throughput, bits/s.
    pub throughput_bps: Vec<f64>,
    /// Per-run throughput-reliability product, bits/s.
    pub product_bps: Vec<f64>,
    /// Per-run probing overhead fraction.
    pub overhead: Vec<f64>,
}

impl Aggregate {
    /// Builds the aggregate from raw run results. Returns `None` for an
    /// empty batch — the old behaviour silently produced an aggregate with
    /// empty strategy/scenario names and NaN statistics, which then leaked
    /// into CSV output as blank rows.
    pub fn from_runs(runs: &[RunResult], mcs: &McsTable) -> Option<Self> {
        let first = runs.first()?;
        Some(Self {
            strategy: first.strategy.clone(),
            scenario: first.scenario.clone(),
            reliability: runs.iter().map(|r| r.reliability()).collect(),
            throughput_bps: runs.iter().map(|r| r.mean_throughput_bps(mcs)).collect(),
            product_bps: runs
                .iter()
                .map(|r| r.throughput_reliability_product(mcs))
                .collect(),
            overhead: runs.iter().map(|r| r.probing_overhead()).collect(),
        })
    }

    /// Median reliability.
    pub fn median_reliability(&self) -> f64 {
        stats::median(&self.reliability)
    }

    /// Mean reliability.
    pub fn mean_reliability(&self) -> f64 {
        stats::mean(&self.reliability)
    }

    /// Mean throughput, bits/s.
    pub fn mean_throughput_bps(&self) -> f64 {
        stats::mean(&self.throughput_bps)
    }

    /// Mean throughput-reliability product, bits/s.
    pub fn mean_product_bps(&self) -> f64 {
        stats::mean(&self.product_bps)
    }

    /// Mean probing overhead fraction.
    pub fn mean_overhead(&self) -> f64 {
        stats::mean(&self.overhead)
    }

    /// One CSV row: `strategy,scenario,rel_mean,rel_median,tput_mbps,product_mbps,overhead`.
    /// Names are escaped via [`crate::metrics::csv_field`], so a strategy
    /// label containing a comma cannot shear the row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.4},{:.4},{:.1},{:.1},{:.4}",
            crate::metrics::csv_field(&self.strategy),
            crate::metrics::csv_field(&self.scenario),
            self.mean_reliability(),
            self.median_reliability(),
            self.mean_throughput_bps() / 1e6,
            self.mean_product_bps() / 1e6,
            self.mean_overhead()
        )
    }
}

/// One run of a sweep that did not complete: the seed that was being
/// played and the panic payload, so a 100-run overnight sweep reports
/// *which* configuration died instead of tearing the whole batch down
/// with an opaque join error.
#[derive(Clone, Debug)]
pub struct FailedRun {
    /// Index of the run within the sweep.
    pub run_idx: usize,
    /// Seed the failed run was instantiated with.
    pub seed: u64,
    /// Panic message (or a placeholder for non-string payloads).
    pub panic_msg: String,
}

impl std::fmt::Display for FailedRun {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run {} (seed {}) panicked: {}",
            self.run_idx, self.seed, self.panic_msg
        )
    }
}

impl std::error::Error for FailedRun {}

pub(crate) fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if mmreliable::cancel::is_cancel_unwind(payload.as_ref()) {
        mmreliable::cancel::CancelUnwind.to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`run_many`], but a run that panics becomes an `Err(`[`FailedRun`]`)`
/// in its slot instead of killing the sweep: the other runs (including
/// those sharing the panicking run's thread) still complete.
///
/// `threads == 0` means "use every available core"
/// (`std::thread::available_parallelism`). Seeds — and therefore results —
/// do not depend on the thread count.
pub fn try_run_many<S, F>(
    n_runs: usize,
    base_seed: u64,
    threads: usize,
    scenario_fn: S,
    strategy_fn: F,
) -> Vec<Result<RunResult, FailedRun>>
where
    S: Fn(u64) -> Scenario + Sync,
    F: Fn() -> Box<dyn BeamStrategy + Send> + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let mut results: Vec<Option<Result<RunResult, FailedRun>>> = Vec::new();
    results.resize_with(n_runs, || None);
    let chunk = n_runs.div_ceil(threads);
    std::thread::scope(|scope| {
        for (ti, slot_chunk) in results.chunks_mut(chunk).enumerate() {
            let scenario_fn = &scenario_fn;
            let strategy_fn = &strategy_fn;
            scope.spawn(move || {
                for (i, slot) in slot_chunk.iter_mut().enumerate() {
                    let run_idx = ti * chunk + i;
                    let seed = base_seed.wrapping_add(run_idx as u64);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let sc = scenario_fn(seed);
                        let mut sim = sc.simulator(seed);
                        let mut strategy = strategy_fn();
                        sim.run_with_warmup(
                            strategy.as_mut(),
                            sc.duration_s,
                            sc.tick_period_s,
                            sc.name,
                            sc.warmup_s,
                        )
                    }));
                    *slot = Some(outcome.map_err(|payload| FailedRun {
                        run_idx,
                        seed,
                        panic_msg: panic_msg(payload),
                    }));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every slot visited"))
        .collect()
}

/// Runs `n_runs` seeded instances of a scenario family against a strategy
/// family, spread across `threads` OS threads (`0` = every available
/// core). Returns all run records.
///
/// `scenario_fn(seed)` builds the (possibly seed-dependent) scenario;
/// `strategy_fn()` builds a fresh strategy per run.
///
/// Panics if any run panics, naming the failed runs (see [`try_run_many`]
/// for the non-panicking variant).
pub fn run_many<S, F>(
    n_runs: usize,
    base_seed: u64,
    threads: usize,
    scenario_fn: S,
    strategy_fn: F,
) -> Vec<RunResult>
where
    S: Fn(u64) -> Scenario + Sync,
    F: Fn() -> Box<dyn BeamStrategy + Send> + Sync,
{
    let outcomes = try_run_many(n_runs, base_seed, threads, scenario_fn, strategy_fn);
    let failures: Vec<String> = outcomes
        .iter()
        .filter_map(|r| r.as_ref().err().map(|f| f.to_string()))
        .collect();
    if !failures.is_empty() {
        panic!(
            "{} of {} runs failed: {}",
            failures.len(),
            n_runs,
            failures.join("; ")
        );
    }
    outcomes.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use mmwave_baselines::single_reactive::{ReactiveConfig, SingleBeamReactive};

    #[test]
    fn run_many_produces_all_runs() {
        let runs = run_many(4, 100, 2, scenario::mobile_blockage, || {
            Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
        });
        assert_eq!(runs.len(), 4);
        for r in &runs {
            assert!((r.duration_s() - 1.0).abs() < 5e-3);
            assert_eq!(r.strategy, "single-beam reactive");
        }
    }

    #[test]
    fn aggregate_statistics() {
        let mcs = McsTable::nr_table();
        let runs = run_many(3, 7, 3, scenario::mobile_blockage, || {
            Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
        });
        let agg = Aggregate::from_runs(&runs, &mcs).expect("non-empty batch");
        assert_eq!(agg.reliability.len(), 3);
        assert!(agg.mean_reliability() >= 0.0 && agg.mean_reliability() <= 1.0);
        assert!(agg.csv_row().contains("single-beam reactive"));
    }

    #[test]
    fn empty_batch_aggregates_to_none() {
        assert!(Aggregate::from_runs(&[], &McsTable::nr_table()).is_none());
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let go = |threads| {
            let runs = run_many(2, 91, threads, scenario::mobile_blockage, || {
                Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
            });
            runs.iter()
                .map(|r| r.reliability().to_bits())
                .collect::<Vec<_>>()
        };
        // threads = 0 must run (auto-sized pool) and reproduce the
        // single-thread results exactly.
        assert_eq!(go(0), go(1));
    }

    #[test]
    fn panicking_run_is_marked_not_fatal() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct PanicOnTick;
        impl BeamStrategy for PanicOnTick {
            fn name(&self) -> &'static str {
                "panic-on-tick"
            }
            fn on_tick(&mut self, _fe: &mut dyn mmreliable::frontend::LinkFrontEnd, _t_s: f64) {
                panic!("injected test panic");
            }
            fn weights(&self) -> mmwave_array::weights::BeamWeights {
                mmwave_array::weights::BeamWeights::muted(64)
            }
        }

        let built = AtomicUsize::new(0);
        let outcomes = try_run_many(3, 50, 1, scenario::mobile_blockage, || {
            if built.fetch_add(1, Ordering::SeqCst) == 1 {
                Box::new(PanicOnTick)
            } else {
                Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
            }
        });
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].is_ok());
        assert!(
            outcomes[2].is_ok(),
            "runs after the panic must still complete"
        );
        let failed = outcomes[1].as_ref().unwrap_err();
        assert_eq!(failed.run_idx, 1);
        assert_eq!(failed.seed, 51);
        assert!(failed.panic_msg.contains("injected test panic"));
        assert!(failed.to_string().contains("seed 51"));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let go = |threads| {
            let runs = run_many(4, 55, threads, scenario::mobile_blockage, || {
                Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
            });
            runs.iter().map(|r| r.reliability()).collect::<Vec<_>>()
        };
        assert_eq!(go(1), go(4));
    }
}
