//! The paper's experiment library as reproducible scenario builders.
//!
//! Every builder returns a [`Scenario`] — a fully-specified, seeded
//! experiment an evaluation binary can instantiate into a
//! [`crate::LinkSimulator`] and run against any strategy.

use crate::faults::{FaultInjector, FaultSchedule};
use crate::impairments::{ImpairedFrontEnd, ImpairmentConfig};
use crate::simulator::LinkSimulator;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_channel::blockage::{BlockageEvent, BlockageProcess};
use mmwave_channel::channel::UeReceiver;
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::mobility::{Pose, Trajectory};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{FC_28GHZ, FC_60GHZ};
use mmwave_phy::chanest::ChannelSounder;

/// The underlying validation message an invalid scenario component was
/// rejected with — the `source` of a [`ScenarioError`], so callers walking
/// the standard error chain see both the classification and the raw reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidationMessage(String);

impl ValidationMessage {
    /// The raw validation message.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for ValidationMessage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ValidationMessage {}

/// Why a scenario could not be assembled. Typed so callers — the campaign
/// supervisor, and especially the scenario fuzzer — can tell a *rejected*
/// configuration (an invalid fault schedule or impairment config, which a
/// generator simply discards) from a malformed *spec* (a parse error in a
/// serialized scenario description, which is a bug in whatever produced
/// it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScenarioError {
    /// The fault schedule failed [`FaultSchedule::validate`].
    InvalidFault(ValidationMessage),
    /// The impairment config failed [`ImpairmentConfig::validate`] (or the
    /// geometry-dependent checks in `ImpairedFrontEnd::new`).
    InvalidImpairment(ValidationMessage),
    /// A serialized scenario spec failed to parse or to build.
    InvalidSpec(ValidationMessage),
}

impl ScenarioError {
    /// Constructs an [`ScenarioError::InvalidFault`] from a raw message.
    pub fn fault(msg: impl Into<String>) -> Self {
        ScenarioError::InvalidFault(ValidationMessage(msg.into()))
    }

    /// Constructs an [`ScenarioError::InvalidImpairment`] from a raw
    /// message.
    pub fn impairment(msg: impl Into<String>) -> Self {
        ScenarioError::InvalidImpairment(ValidationMessage(msg.into()))
    }

    /// Constructs an [`ScenarioError::InvalidSpec`] from a raw message.
    pub fn spec(msg: impl Into<String>) -> Self {
        ScenarioError::InvalidSpec(ValidationMessage(msg.into()))
    }

    /// The raw validation message, without the classification prefix.
    pub fn reason(&self) -> &str {
        match self {
            ScenarioError::InvalidFault(m)
            | ScenarioError::InvalidImpairment(m)
            | ScenarioError::InvalidSpec(m) => m.as_str(),
        }
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::InvalidFault(m) => write!(f, "invalid fault schedule: {m}"),
            ScenarioError::InvalidImpairment(m) => write!(f, "invalid impairment config: {m}"),
            ScenarioError::InvalidSpec(m) => write!(f, "invalid scenario spec: {m}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::InvalidFault(m)
            | ScenarioError::InvalidImpairment(m)
            | ScenarioError::InvalidSpec(m) => Some(m),
        }
    }
}

/// A fully-specified experiment.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// The environment.
    pub dynamic: DynamicChannel,
    /// The radio front end.
    pub sounder: ChannelSounder,
    /// UE receive model.
    pub rx: UeReceiver,
    /// Measured experiment duration, seconds (excludes warm-up).
    pub duration_s: f64,
    /// Maintenance (CSI-RS) tick period, seconds.
    pub tick_period_s: f64,
    /// Warm-up window before measurement starts, seconds. Every scheme
    /// performs its initial beam training here, matching the paper's
    /// protocol ("At the beginning of each experiment, we perform beam
    /// training", §6); authored dynamics are delayed accordingly.
    pub warmup_s: f64,
    /// Front-end fault schedule for this experiment. Library builders
    /// produce the inert schedule; chaos campaigns attach a real one with
    /// [`Scenario::with_faults`], which validates it up front.
    pub fault: FaultSchedule,
    /// Hardware impairment configuration for this experiment. Library
    /// builders produce the inert configuration; impairment campaigns
    /// attach a real one with [`Scenario::with_impairments`], which
    /// validates it up front.
    pub impairment: ImpairmentConfig,
}

impl Scenario {
    /// Instantiates the simulator for this scenario with the given seed.
    /// The environment clock is delayed by the warm-up window.
    pub fn simulator(&self, seed: u64) -> LinkSimulator {
        LinkSimulator::new(
            self.dynamic.clone().with_start_delay(self.warmup_s),
            self.sounder.clone(),
            ArrayGeometry::paper_8x8(),
            self.rx.clone(),
            Rng64::seed(seed),
        )
    }

    /// Attaches a fault schedule, failing fast on an invalid one so a
    /// mis-specified campaign cell is rejected before any airtime is spent.
    pub fn with_faults(mut self, fault: FaultSchedule) -> Result<Self, ScenarioError> {
        fault.validate().map_err(ScenarioError::fault)?;
        self.fault = fault;
        Ok(self)
    }

    /// Attaches a hardware impairment configuration, failing fast on an
    /// invalid one — the impairment counterpart of
    /// [`Scenario::with_faults`].
    pub fn with_impairments(mut self, impairment: ImpairmentConfig) -> Result<Self, ScenarioError> {
        impairment.validate().map_err(ScenarioError::impairment)?;
        self.impairment = impairment;
        Ok(self)
    }

    /// Instantiates the full faulted front-end stack: the seeded simulator
    /// wrapped in a [`FaultInjector`] driving this scenario's schedule.
    /// Campaign code that wants the zero-fault bit-identity guarantee
    /// checks [`FaultSchedule::is_inert`] and runs the bare simulator
    /// instead.
    pub fn faulted_simulator(
        &self,
        seed: u64,
    ) -> Result<FaultInjector<LinkSimulator>, ScenarioError> {
        FaultInjector::new(self.simulator(seed), self.fault.clone())
    }

    /// Instantiates the impaired front-end stack: the seeded simulator
    /// wrapped in an [`ImpairedFrontEnd`] driving this scenario's
    /// impairment configuration. Callers that also inject faults wrap the
    /// result in a [`FaultInjector`] (impairments sit nearest the
    /// hardware).
    pub fn impaired_simulator(
        &self,
        seed: u64,
    ) -> Result<ImpairedFrontEnd<LinkSimulator>, ScenarioError> {
        ImpairedFrontEnd::new(self.simulator(seed), self.impairment.clone())
    }

    /// Total simulated time including warm-up.
    pub fn total_time_s(&self) -> f64 {
        self.warmup_s + self.duration_s
    }
}

/// Default warm-up: covers a 64-SSB exhaustive scan (32 ms) plus
/// establishment probes with margin.
pub const DEFAULT_WARMUP_S: f64 = 0.06;

/// Standard off-center indoor UE position (avoids the degenerate symmetric
/// geometry where both wall bounces share one delay).
fn indoor_ue() -> Pose {
    Pose {
        pos: v2(0.9, 7.0),
        facing_deg: 180.0,
    }
}

/// Fig. 16 / Fig. 18a: static indoor link; a walker crosses the whole link,
/// blocking the NLOS path then the LOS path (~0.3 s apart at walking pace).
pub fn static_walker() -> Scenario {
    // Reference path order for the off-center UE: 0 = LOS, 1 = left wall,
    // 2 = right wall, 3 = far wall.
    let mut blockage = BlockageProcess::walker_crossing(2, 0, 0.25, 0.3, 0.25);
    // The LOS and the far-wall bounce share the blocked corridor.
    blockage.mirror_events(0, 3);
    Scenario {
        name: "static-walker",
        dynamic: DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Static { pose: indoor_ue() },
            blockage,
        ),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.2,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// Fig. 18b/c protocol: 1-s mobile run (1.5 m/s lateral translation) with a
/// human blocker on the LOS for a uniform 100–500 ms window, 20–30 dB deep.
/// Seeded per run.
pub fn mobile_blockage(seed: u64) -> Scenario {
    let mut rng = Rng64::seed(seed.wrapping_mul(0x9E37_79B9));
    let mut blockage = BlockageProcess::paper_mobile_protocol(0, &mut rng);
    // A body on the LOS corridor also blocks the collinear far-wall ray.
    blockage.mirror_events(0, 3);
    Scenario {
        name: "mobile-blockage",
        dynamic: DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Translation {
                start: indoor_ue(),
                velocity: v2(1.5, 0.0),
            },
            blockage,
        ),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// Fig. 17c: pure 1-s translation at 1.5 m/s, no blockage — isolates the
/// tracking + constructive-combining ablations.
pub fn translation_1s() -> Scenario {
    Scenario {
        name: "translation-1s",
        dynamic: DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Translation {
                start: indoor_ue(),
                velocity: v2(1.5, 0.0),
            },
            BlockageProcess::none(),
        ),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// Fig. 17a/b: gNB gantry rotation at `rate_deg_s` (paper sweeps 2–8°/s
/// equivalents and uses 24°/s for the VR case), static UE.
pub fn gnb_rotation(rate_deg_s: f64) -> Scenario {
    Scenario {
        name: "gnb-rotation",
        dynamic: DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Static { pose: indoor_ue() },
            BlockageProcess::none(),
        )
        .with_gnb_rotation(rate_deg_s),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// Fig. 18b/c protocol, rotation flavor: gNB gantry rotation at 18°/s
/// (between the paper's tracking sweeps and its 24°/s VR rate) plus the
/// seeded mid-run blocker. Misalignment accrues continuously, which is
/// where reactive schemes bleed reliability.
pub fn rotation_blockage(seed: u64) -> Scenario {
    let mut rng = Rng64::seed(seed.wrapping_mul(0xC13F_A9A9));
    let mut blockage = BlockageProcess::paper_mobile_protocol(0, &mut rng);
    blockage.mirror_events(0, 3);
    Scenario {
        name: "rotation-blockage",
        dynamic: DynamicChannel::new(
            Scene::conference_room(FC_28GHZ),
            Trajectory::Static { pose: indoor_ue() },
            blockage,
        )
        .with_gnb_rotation(18.0),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// The paper's Fig. 18b/c mix: alternating translation and rotation runs.
pub fn mixed_mobility_blockage(seed: u64) -> Scenario {
    if seed.is_multiple_of(2) {
        mobile_blockage(seed)
    } else {
        rotation_blockage(seed)
    }
}

/// Outdoor long link (10–80 m) beside the glass-walled building, with a
/// mid-run LOS blocker. The 100 MHz USRP front end, per §5.2.
pub fn outdoor(dist_m: f64, seed: u64) -> Scenario {
    let mut rng = Rng64::seed(seed.wrapping_mul(0xA24B_AED4));
    let blockage = BlockageProcess::paper_mobile_protocol(0, &mut rng);
    Scenario {
        name: "outdoor",
        dynamic: DynamicChannel::new(
            Scene::outdoor_street(FC_28GHZ),
            Trajectory::Static {
                pose: Pose {
                    pos: v2(0.0, dist_m),
                    facing_deg: 180.0,
                },
            },
            blockage,
        ),
        sounder: ChannelSounder::paper_outdoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// "Natural motion" end-to-end run (§6: "We also experiment with natural
/// motion"): a waypoint walk through the conference room — sidestep,
/// pause, turn, walk back — with a mid-run blocker, in a richer channel
/// that includes wall-pair double bounces.
pub fn natural_motion(seed: u64) -> Scenario {
    use mmwave_channel::geom2d::v2 as p2;
    let mut rng = Rng64::seed(seed.wrapping_mul(0xD1B5_4A32));
    let mut blockage = BlockageProcess::paper_mobile_protocol(0, &mut rng);
    blockage.mirror_events(0, 3);
    let mut scene = Scene::conference_room(FC_28GHZ);
    scene.max_bounces = 2;
    let knots = vec![
        (
            0.0,
            Pose {
                pos: p2(0.6, 6.5),
                facing_deg: 180.0,
            },
        ),
        (
            0.4,
            Pose {
                pos: p2(1.2, 6.8),
                facing_deg: 184.0,
            },
        ),
        (
            0.7,
            Pose {
                pos: p2(1.2, 6.8),
                facing_deg: 176.0,
            },
        ), // pause + turn
        (
            1.0,
            Pose {
                pos: p2(0.7, 7.4),
                facing_deg: 180.0,
            },
        ),
        (
            1.5,
            Pose {
                pos: p2(-0.2, 7.2),
                facing_deg: 186.0,
            },
        ),
    ];
    Scenario {
        name: "natural-motion",
        dynamic: DynamicChannel::new(scene, Trajectory::Waypoints { knots }, blockage),
        sounder: ChannelSounder::paper_indoor(),
        rx: UeReceiver::Omni,
        duration_s: 1.5,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

/// Appendix B: 10 m link with a concrete reflector at 60°, static UE with
/// ~10% blockage duty cycle on the LOS, at 28 or 60 GHz.
pub fn appendix_b(sixty_ghz: bool) -> Scenario {
    let fc = if sixty_ghz { FC_60GHZ } else { FC_28GHZ };
    let mut sounder = ChannelSounder::paper_indoor();
    if sixty_ghz {
        sounder.budget = mmwave_channel::linkbudget::LinkBudget::sixty_ghz_400mhz();
    }
    // 10% blockage: one 100 ms full block per 1 s run.
    let blockage = BlockageProcess::from_events(vec![BlockageEvent::nominal(0, 0.45, 25.0, 0.1)]);
    Scenario {
        name: if sixty_ghz {
            "appendix-b-60ghz"
        } else {
            "appendix-b-28ghz"
        },
        dynamic: DynamicChannel::new(
            Scene::appendix_b(fc),
            Trajectory::Static {
                pose: Pose {
                    pos: v2(0.0, 10.0),
                    facing_deg: 180.0,
                },
            },
            blockage,
        ),
        sounder,
        rx: UeReceiver::Omni,
        duration_s: 1.0,
        tick_period_s: 10e-3,
        warmup_s: DEFAULT_WARMUP_S,
        fault: FaultSchedule::none(),
        impairment: ImpairmentConfig::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_produce_paths() {
        for sc in [
            static_walker(),
            mobile_blockage(1),
            translation_1s(),
            gnb_rotation(8.0),
            outdoor(30.0, 1),
            appendix_b(false),
            appendix_b(true),
        ] {
            let paths = sc.dynamic.reference_paths();
            assert!(!paths.is_empty(), "{}: no paths at t=0", sc.name);
            assert!(sc.duration_s > 0.0);
        }
    }

    #[test]
    fn natural_motion_runs_and_has_rich_channel() {
        let sc = natural_motion(1);
        let paths = sc.dynamic.reference_paths();
        assert!(
            paths.len() > 4,
            "double bounces expected, got {}",
            paths.len()
        );
        // Pose actually moves and turns over the run.
        let a = sc.dynamic.pose_at(sc.warmup_s + 0.4);
        let b = sc.dynamic.pose_at(sc.warmup_s + 0.7);
        assert!(sc.dynamic.pose_at(sc.warmup_s).pos.dist(b.pos) > 0.3);
        assert!((a.facing_deg - b.facing_deg).abs() > 4.0, "turn expected");
    }

    #[test]
    fn walker_blocks_nlos_then_los() {
        let sc = static_walker();
        // During the first hit (t ≈ 0.3) the right-wall path is blocked.
        let mid_first = sc.dynamic.channel_at(0.35);
        assert!(mid_first.paths[2].blockage_db > 10.0);
        assert!(mid_first.paths[0].blockage_db < 1.0);
        // Later the LOS is blocked.
        let mid_second = sc.dynamic.channel_at(0.65);
        assert!(mid_second.paths[0].blockage_db > 10.0);
    }

    #[test]
    fn mobile_blockage_is_seeded() {
        let a = mobile_blockage(3);
        let b = mobile_blockage(3);
        let c = mobile_blockage(4);
        assert_eq!(a.dynamic.blockage.events(), b.dynamic.blockage.events());
        assert_ne!(a.dynamic.blockage.events(), c.dynamic.blockage.events());
    }

    #[test]
    fn rotation_shifts_aods() {
        let sc = gnb_rotation(24.0);
        let a0 = sc.dynamic.true_aod_deg(0, 0.0).unwrap();
        let a1 = sc.dynamic.true_aod_deg(0, 0.5).unwrap();
        assert!((a0 - a1 - 12.0).abs() < 1e-9, "Δ {}", a0 - a1);
    }

    #[test]
    fn sixty_ghz_scene_uses_60ghz_budget() {
        let sc = appendix_b(true);
        assert!((sc.dynamic.scene.fc_hz - FC_60GHZ).abs() < 1.0);
        assert!((sc.sounder.budget.fc_hz - FC_60GHZ).abs() < 1.0);
    }

    #[test]
    fn simulator_instantiation() {
        let sc = translation_1s();
        let sim = sc.simulator(9);
        assert_eq!(sim.now_s(), 0.0);
    }
}
