//! Fleet-scale cell simulation: many UEs sharing one environment.
//!
//! The paper evaluates one gNB–UE link at a time; a deployment serves a
//! cell of them. This module runs N independent per-UE link simulations
//! as *one cell*:
//!
//! - **Shared environment** — the UE-independent half of the image-source
//!   ray trace (per-wall gNB images) is computed once per cell in a
//!   [`SharedSceneCache`] and shared read-only by every UE's
//!   [`mmwave_channel::DynamicChannel`]. Cached traces are bit-identical
//!   to uncached ones, so sharing is a pure amortization.
//! - **StateHandler/IO** — per-UE link lifecycle state is owned by one
//!   [`StateHandler`] per shard. The fleet loop never touches a
//!   `LinkLifecycle` directly: it derives typed [`Intent`]s from each
//!   UE's new sample window and submits them through an [`IntentQueue`];
//!   the handler drains and applies them once per pass. The
//!   `lifecycle-single-writer` and fleet-scope lints enforce this
//!   split mechanically.
//! - **Deterministic sharding** — UE → shard is a pure function of
//!   `(fleet seed, ue)`, and every UE's run is seeded from
//!   `(fleet seed, ue)` alone, so the fleet digest is invariant to the
//!   worker-thread count and to the shard count: parallelism changes
//!   wall-clock, never results.
//! - **Pass cadence** — shards interleave their UEs in passes of the
//!   paper's 25 ms probe cadence ([`PASS_PERIOD_S`]): every UE advances
//!   to the pass boundary via [`SlotLoop::advance_until`], then the
//!   shard's handler applies the queued intents in one batch.
//!
//! A fleet of size 1 is bit-identical to the single-link pipeline: UE 0
//! runs under the fleet seed itself, the shared cache is arithmetic-
//! neutral, and `SlotLoop` stepping is control-flow slicing of the exact
//! single-link loop.
//!
//! Journaling reuses the campaign's crash-consistent JSONL format with a
//! distinguishable scenario form: per-UE lines are
//! `fleet:{base}:{n}:ue{k}` (seed = the UE's derived seed) and one
//! aggregate line `fleet:{base}:{n}` (seed = the fleet seed, digest = the
//! fleet digest). `replay` re-executes a per-UE line as a plain
//! single-link cell — bit-identically — and [`fleet_note`] warns (never
//! errors) about fleet forms a binary predates.

use crate::campaign::{
    build_scenario, build_strategy, compiled_features, load_journal, write_lines_atomic,
    JournalEntry, SCENARIO_NAMES, STRATEGY_NAMES,
};
use crate::faults::{FaultEvent, FaultInjector, FaultSchedule};
use crate::impairments::{ImpairedFrontEnd, ImpairmentConfig, ImpairmentEvent};
use crate::metrics::RunResult;
use crate::simulator::{LinkSimulator, SimFrontEnd, SlotLoop};
use crate::spec::{mix_fields, parse_mix_fields, MixGroup};
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmreliable::linkstate::LifecycleConfig;
use mmreliable::{Intent, IntentKind, IntentQueue, Io, StateHandler, UeId};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_channel::{SharedSceneCache, SharedSceneCounters};
use mmwave_hotpath::hot_path;
use mmwave_phy::chanest::ProbeObservation;
use mmwave_telemetry::{LatencyHist, StopWatch};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Handler-pass cadence: the paper's 25 ms probing period (§5.2). Every
/// pass, each UE advances 25 ms of simulated time and the shard's
/// [`StateHandler`] applies one batch of intents.
pub const PASS_PERIOD_S: f64 = 25e-3;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The seed a fleet member runs under. UE 0 runs under the fleet seed
/// itself — that is what makes a fleet of size 1 bit-identical to the
/// single-link pipeline at the same seed.
pub fn ue_seed(fleet_seed: u64, ue: u32) -> u64 {
    fleet_seed.wrapping_add(ue as u64)
}

/// Deterministic UE → shard assignment: a pure function of the fleet seed
/// and the UE index, independent of thread count and submission order.
pub fn shard_of(fleet_seed: u64, ue: u32, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    let mut h = FNV_OFFSET;
    h = fnv_u64(h, fleet_seed);
    h = fnv_u64(h, ue as u64);
    (h % n_shards as u64) as usize
}

/// The fleet digest: FNV-1a over `(ue, per-UE digest)` in UE order.
/// Because every per-UE run is independent and fully determined by its
/// derived seed, this digest is invariant to worker/shard count.
pub fn fleet_digest(outcomes: &[UeOutcome]) -> u64 {
    let mut h = FNV_OFFSET;
    for o in outcomes {
        h = fnv_u64(h, o.ue as u64);
        h = fnv_u64(h, o.digest);
    }
    h
}

/// The fault/impairment pair fleet member `ue` runs under, derived from
/// the fleet's mix groups: group `ue % groups.len()`, with both seeds
/// offset by `ue` so every member of a group draws its own fault and
/// impairment realization while staying a pure function of `(mix, ue)`.
/// `None` for the clean fleet (empty mix).
pub fn ue_mix(mix: &[MixGroup], ue: u32) -> Option<(FaultSchedule, ImpairmentConfig)> {
    if mix.is_empty() {
        return None;
    }
    let g = &mix[ue as usize % mix.len()];
    let mut fault = g.fault.clone();
    fault.seed = fault.seed.wrapping_add(ue as u64);
    let mut impairment = g.impairment.clone();
    impairment.seed = impairment.seed.wrapping_add(ue as u64);
    Some((fault, impairment))
}

/// The canonical `(fault, impairment)` spec strings member `ue` journals
/// under — [`ue_mix`]'s derived pair serialized, `("none", "none")` for a
/// clean fleet. Per-UE journal lines carry these, which is what makes a
/// mixed member's line replayable as a plain single-link faulted cell.
pub fn ue_mix_specs(mix: &[MixGroup], ue: u32) -> (String, String) {
    match ue_mix(mix, ue) {
        None => ("none".to_string(), "none".to_string()),
        Some((f, i)) => (f.spec_string(), i.spec_string()),
    }
}

/// A fleet lane's front-end stack: the bare simulator or the same
/// decorator chains the single-link campaign builds, chosen per UE by the
/// fleet mix. An enum rather than a trait object so [`SlotLoop`]'s generic
/// stepping stays statically dispatched — the match is control flow only,
/// so an in-fleet decorated run is bit-identical to the standalone
/// decorated run at the same derived seed.
// One value per lane for the whole run, so the variant size spread costs
// nothing; boxing the decorated variants would add a pointer chase to
// every per-slot probe instead.
#[allow(clippy::large_enum_variant)]
enum LaneFrontEnd {
    Bare(LinkSimulator),
    Faulted(FaultInjector<LinkSimulator>),
    Impaired(ImpairedFrontEnd<LinkSimulator>),
    Both(FaultInjector<ImpairedFrontEnd<LinkSimulator>>),
}

macro_rules! lane_delegate {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            LaneFrontEnd::Bare($inner) => $e,
            LaneFrontEnd::Faulted($inner) => $e,
            LaneFrontEnd::Impaired($inner) => $e,
            LaneFrontEnd::Both($inner) => $e,
        }
    };
}

impl LaneFrontEnd {
    /// Stable annotation for the decorator stack wrapping this lane
    /// (empty for a clean front-end) — rides on the lane's state-history
    /// lines so an operator reading a transition tape sees which
    /// environment produced it.
    fn note(&self) -> &'static str {
        match self {
            LaneFrontEnd::Bare(_) => "",
            LaneFrontEnd::Faulted(_) => "faulted",
            LaneFrontEnd::Impaired(_) => "impaired",
            LaneFrontEnd::Both(_) => "faulted+impaired",
        }
    }
}

impl LaneFrontEnd {
    /// Wraps `sim` in the decorator stack the mix calls for — the same
    /// nesting order as the campaign's `run_setup` (impairments nearest
    /// the hardware, faults outermost).
    fn build(
        sim: LinkSimulator,
        fault: FaultSchedule,
        impairment: ImpairmentConfig,
    ) -> Result<Self, String> {
        Ok(match (fault.is_inert(), impairment.is_inert()) {
            (true, true) => LaneFrontEnd::Bare(sim),
            (false, true) => {
                LaneFrontEnd::Faulted(FaultInjector::new(sim, fault).map_err(|e| e.to_string())?)
            }
            (true, false) => LaneFrontEnd::Impaired(
                ImpairedFrontEnd::new(sim, impairment).map_err(|e| e.to_string())?,
            ),
            (false, false) => {
                let impaired = ImpairedFrontEnd::new(sim, impairment).map_err(|e| e.to_string())?;
                LaneFrontEnd::Both(FaultInjector::new(impaired, fault).map_err(|e| e.to_string())?)
            }
        })
    }
}

impl LinkFrontEnd for LaneFrontEnd {
    fn geometry(&self) -> &ArrayGeometry {
        lane_delegate!(self, f => f.geometry())
    }

    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation {
        lane_delegate!(self, f => f.probe_kind(weights, kind))
    }

    fn probe_kind_into(
        &mut self,
        weights: &BeamWeights,
        kind: ProbeKind,
        out: &mut ProbeObservation,
    ) {
        lane_delegate!(self, f => f.probe_kind_into(weights, kind, out))
    }

    fn wait(&mut self, dur_s: f64) {
        lane_delegate!(self, f => f.wait(dur_s))
    }

    fn now_s(&self) -> f64 {
        lane_delegate!(self, f => f.now_s())
    }

    fn cancel_requested(&self) -> bool {
        lane_delegate!(self, f => f.cancel_requested())
    }

    fn probes_used(&self) -> usize {
        lane_delegate!(self, f => f.probes_used())
    }
}

impl SimFrontEnd for LaneFrontEnd {
    fn sim(&self) -> &LinkSimulator {
        lane_delegate!(self, f => f.sim())
    }

    fn sim_mut(&mut self) -> &mut LinkSimulator {
        lane_delegate!(self, f => f.sim_mut())
    }

    fn radiated_weights_into(&self, w: &BeamWeights, out: &mut BeamWeights) {
        lane_delegate!(self, f => f.radiated_weights_into(w, out))
    }

    fn apply_radiated_faults(&self, w: &mut BeamWeights) {
        lane_delegate!(self, f => f.apply_radiated_faults(w))
    }

    fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        lane_delegate!(self, f => f.drain_fault_events())
    }

    fn drain_impairment_events(&mut self) -> Vec<ImpairmentEvent> {
        lane_delegate!(self, f => f.drain_impairment_events())
    }
}

// ---------------------------------------------------------------------------
// Fleet scenario identity (journal / replay vocabulary)
// ---------------------------------------------------------------------------

/// Journal scenario field for the fleet's aggregate line.
pub fn fleet_scenario_id(base: &str, n_ues: u32) -> String {
    format!("fleet:{base}:{n_ues}")
}

/// Journal scenario field for one fleet member's line.
pub fn fleet_ue_scenario_id(base: &str, n_ues: u32, ue: u32) -> String {
    format!("fleet:{base}:{n_ues}:ue{ue}")
}

/// A parsed fleet journal scenario field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetScenarioRef {
    /// `fleet:{base}:{n}` — the whole-fleet aggregate line (seed = fleet
    /// seed, digest = fleet digest).
    Aggregate {
        /// Base single-link scenario registry name.
        base: String,
        /// Fleet size.
        n_ues: u32,
    },
    /// `fleet:{base}:{n}:ue{k}` — one member's line (seed = the UE's
    /// derived seed, digest = the UE's single-link run digest).
    PerUe {
        /// Base single-link scenario registry name.
        base: String,
        /// Fleet size.
        n_ues: u32,
        /// Member index in `0..n_ues`.
        ue: u32,
    },
}

/// Parses a fleet journal scenario field; `None` for anything that is not
/// a well-formed fleet form (including plain single-link names).
pub fn parse_fleet_scenario(s: &str) -> Option<FleetScenarioRef> {
    let rest = s.strip_prefix("fleet:")?;
    let parts: Vec<&str> = rest.split(':').collect();
    match parts.as_slice() {
        [base, n] => {
            let n_ues: u32 = n.parse().ok()?;
            (n_ues > 0 && !base.is_empty()).then(|| FleetScenarioRef::Aggregate {
                base: (*base).to_string(),
                n_ues,
            })
        }
        [base, n, ue] => {
            let n_ues: u32 = n.parse().ok()?;
            let ue: u32 = ue.strip_prefix("ue")?.parse().ok()?;
            (n_ues > 0 && !base.is_empty()).then(|| FleetScenarioRef::PerUe {
                base: (*base).to_string(),
                n_ues,
                ue,
            })
        }
        _ => None,
    }
}

/// Compares a journal entry's scenario field against this binary's fleet
/// vocabulary and returns a human-readable caution when a replay of that
/// line may not be faithful — the fleet counterpart of
/// [`crate::campaign::impairment_note`]. `None` means either a non-fleet
/// entry or a fleet form this binary fully understands. Replay tooling
/// *warns* with this note and keeps going; it never hard-errors on fleet
/// entries it predates.
pub fn fleet_note(entry: &JournalEntry) -> Option<String> {
    if !entry.scenario.starts_with("fleet:") {
        return None;
    }
    let parsed = match parse_fleet_scenario(&entry.scenario) {
        Some(p) => p,
        None => {
            return Some(format!(
                "journal entry scenario {:?} uses a fleet form this binary does not \
                 recognize; replay cannot reconstruct the cell",
                entry.scenario
            ))
        }
    };
    let (base, n_ues, ue) = match &parsed {
        FleetScenarioRef::Aggregate { base, n_ues } => (base, *n_ues, None),
        FleetScenarioRef::PerUe { base, n_ues, ue } => (base, *n_ues, Some(*ue)),
    };
    if !SCENARIO_NAMES.contains(&base.as_str()) {
        return Some(format!(
            "fleet base scenario {base:?} is not in this binary's registry; \
             replay cannot rebuild the fleet"
        ));
    }
    if let Some(ue) = ue {
        if ue >= n_ues {
            return Some(format!(
                "fleet member index ue{ue} is out of range for a {n_ues}-UE fleet; \
                 the entry cannot belong to the fleet it names"
            ));
        }
    } else if let Err(e) = parse_mix_fields(&entry.fault, &entry.impairment) {
        return Some(format!(
            "fleet aggregate entry carries a mix this binary cannot parse ({}); \
             replay cannot rebuild the fleet",
            e.reason()
        ));
    }
    None
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// A fully-specified fleet experiment.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Base single-link scenario registry name (see
    /// [`crate::campaign::SCENARIO_NAMES`]); every UE plays this scenario
    /// under its derived seed.
    pub scenario: String,
    /// Strategy registry name; each UE gets a fresh instance.
    pub strategy: String,
    /// Fleet size.
    pub n_ues: u32,
    /// Fleet seed; member k runs under [`ue_seed`]`(seed, k)`.
    pub seed: u64,
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Shard count (0 = same as the resolved thread count). The digest is
    /// invariant to this; it only controls batching.
    pub shards: usize,
    /// Handler-pass cadence, seconds (defaults to [`PASS_PERIOD_S`]).
    pub pass_period_s: f64,
    /// Crash-consistent JSONL journal for kill + resume; `None` disables
    /// journaling.
    pub journal: Option<PathBuf>,
    /// Heterogeneous per-UE fault/impairment mix groups, assigned
    /// round-robin ([`ue_mix`]). Empty = every UE clean (the pre-mix
    /// fleet, bit-identically).
    pub mix: Vec<MixGroup>,
    /// Metrics-registry snapshot (JSONL) output path: per-UE handler
    /// stats, fleet pass-latency histogram, and shared-cache counters,
    /// in the mergeable form `mmwave-admin metrics` reads. Requires the
    /// `telemetry` feature — without it the run notes the skip on stderr
    /// (the simulation payload is identical either way).
    pub metrics: Option<PathBuf>,
}

impl FleetConfig {
    /// A fleet with the default cadence, no journal, auto threads/shards.
    pub fn new(scenario: &str, strategy: &str, n_ues: u32, seed: u64) -> Self {
        Self {
            scenario: scenario.to_string(),
            strategy: strategy.to_string(),
            n_ues,
            seed,
            threads: 0,
            shards: 0,
            pass_period_s: PASS_PERIOD_S,
            journal: None,
            mix: Vec::new(),
            metrics: None,
        }
    }

    /// Fails fast on a config the registry cannot build.
    pub fn validate(&self) -> Result<(), String> {
        if !SCENARIO_NAMES.contains(&self.scenario.as_str()) {
            return Err(format!(
                "unknown fleet base scenario {:?} (known: {})",
                self.scenario,
                SCENARIO_NAMES.join(", ")
            ));
        }
        if !STRATEGY_NAMES.contains(&self.strategy.as_str()) {
            return Err(format!(
                "unknown strategy {:?} (known: {})",
                self.strategy,
                STRATEGY_NAMES.join(", ")
            ));
        }
        if self.n_ues == 0 {
            return Err("fleet needs at least one UE".to_string());
        }
        if self.pass_period_s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err("pass period must be positive".to_string());
        }
        for (i, g) in self.mix.iter().enumerate() {
            g.fault
                .validate()
                .map_err(|e| format!("mix group {i}: {e}"))?;
            g.impairment
                .validate()
                .map_err(|e| format!("mix group {i}: {e}"))?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// One shard: a batch of UEs interleaved in handler passes
// ---------------------------------------------------------------------------

struct UeLane {
    ue: u32,
    sim: LaneFrontEnd,
    strategy: Box<dyn BeamStrategy + Send>,
    /// `Some` until [`FleetShard::finish`] consumes it.
    sl: Option<SlotLoop>,
    /// Samples already folded into intents.
    cursor: usize,
    established: bool,
    /// Running best pass-mean SNR, the handler's reference level.
    best_db: f64,
    done: bool,
}

/// What [`FleetShard::finish`] hands back.
pub struct ShardOutput {
    /// `(ue, run record)` in UE order.
    pub results: Vec<(u32, RunResult)>,
    /// The shard's handler (final per-UE lifecycle state + metrics).
    pub handler: StateHandler,
    /// Per-UE-normalized handler-pass wall latency.
    pub pass_latency: LatencyHist,
    /// Passes executed.
    pub passes: u64,
}

/// One shard of the fleet: its UEs' steppable runs plus the shard's
/// [`StateHandler`]. Single-threaded by construction — parallelism lives
/// one level up, across shards — which is why stepping it from the
/// zero-alloc harness or a test needs no synchronization.
pub struct FleetShard {
    lanes: Vec<UeLane>,
    handler: StateHandler,
    io: IntentQueue,
    pass: u64,
    pass_period_s: f64,
    hist: LatencyHist,
}

impl FleetShard {
    /// Builds the shard for `ues` (member indices into the fleet). The
    /// shared cache is installed on every lane whose scene geometry
    /// matches; a mismatch (a seed-variant scene) falls back to live
    /// mirrors, which is slower but bit-identical.
    pub fn new(
        cfg: &FleetConfig,
        ues: &[u32],
        cache: Option<&Arc<SharedSceneCache>>,
    ) -> Result<Self, String> {
        let mut lanes = Vec::with_capacity(ues.len());
        for &ue in ues {
            let seed = ue_seed(cfg.seed, ue);
            let sc = build_scenario(&cfg.scenario, seed)
                .ok_or_else(|| format!("unknown scenario {:?}", cfg.scenario))?;
            let mut strategy = build_strategy(&cfg.strategy)
                .ok_or_else(|| format!("unknown strategy {:?}", cfg.strategy))?;
            let mut raw = sc.simulator(seed);
            if let Some(c) = cache {
                if c.len() == raw.dynamic.scene.walls.len() {
                    raw.dynamic.set_shared_cache(Arc::clone(c));
                }
            }
            let mut sim = match ue_mix(&cfg.mix, ue) {
                None => LaneFrontEnd::Bare(raw),
                Some((fault, impairment)) => LaneFrontEnd::build(raw, fault, impairment)?,
            };
            let sl = SlotLoop::new(
                &mut sim,
                strategy.as_mut(),
                sc.duration_s,
                sc.tick_period_s,
                sc.name,
                sc.warmup_s,
            );
            lanes.push(UeLane {
                ue,
                sim,
                strategy,
                sl: Some(sl),
                cursor: 0,
                established: false,
                best_db: f64::NEG_INFINITY,
                done: false,
            });
        }
        let mut handler =
            StateHandler::new(ues.iter().map(|&u| UeId(u)), LifecycleConfig::default());
        // Label each lane with its decorator stack so history lines say
        // which environment (clean/faulted/impaired) produced the tape.
        for lane in &lanes {
            let note = lane.sim.note();
            if !note.is_empty() {
                handler.set_note(UeId(lane.ue), note);
            }
        }
        Ok(Self {
            handler,
            lanes,
            io: IntentQueue::new(),
            pass: 0,
            pass_period_s: cfg.pass_period_s,
            hist: LatencyHist::new(),
        })
    }

    /// Number of UEs in this shard.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// True for a shard with no lanes.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Passes executed so far.
    pub fn passes(&self) -> u64 {
        self.pass
    }

    /// The shard's lifecycle owner (read-only view).
    pub fn handler(&self) -> &StateHandler {
        &self.handler
    }

    /// Per-UE-normalized handler-pass wall latency recorded so far.
    pub fn pass_latency(&self) -> &LatencyHist {
        &self.hist
    }

    /// Runs one handler pass: every live UE advances to the next pass
    /// boundary, its new sample window is folded into one intent, and the
    /// shard's handler applies the batch. Returns true once every lane
    /// has covered its full run. Steady-state passes are allocation-free
    /// (the zero-alloc harness pins this).
    #[hot_path]
    pub fn step_pass(&mut self) -> bool {
        let watch = StopWatch::start();
        let t_end = (self.pass + 1) as f64 * self.pass_period_s;
        let mut live = 0u64;
        for lane in self.lanes.iter_mut() {
            if lane.done {
                continue;
            }
            live += 1;
            // xtask-allow(hot-path-panic): the lane.done guard above means an unfinished lane always holds its slot loop
            let sl = lane.sl.as_mut().expect("lane already finished");
            lane.done = sl.advance_until(&mut lane.sim, lane.strategy.as_mut(), t_end);
            // Fold the new sample window into one intent: the pass-mean
            // non-probing SNR, stamped with the window's last sample time.
            let samples = sl.samples();
            debug_assert!(lane.cursor <= samples.len());
            let mut sum = 0.0f64;
            let mut n = 0u32;
            let mut t_last = 0.0f64;
            for s in &samples[lane.cursor..] {
                if !s.probing && s.snr_db.is_finite() {
                    sum += s.snr_db;
                    n += 1;
                    t_last = s.t_s;
                }
            }
            lane.cursor = samples.len();
            if n > 0 {
                let mean = sum / n as f64;
                let kind = if lane.established {
                    let kind = IntentKind::SnrReport {
                        snr_db: mean,
                        ref_db: lane.best_db,
                        unexplained_drop: false,
                    };
                    if mean > lane.best_db {
                        lane.best_db = mean;
                    }
                    kind
                } else {
                    lane.established = true;
                    lane.best_db = mean;
                    IntentKind::Establish {
                        ok: true,
                        snr_db: mean,
                    }
                };
                self.io.submit(Intent {
                    ue: UeId(lane.ue),
                    t_s: t_last,
                    kind,
                });
            }
        }
        self.handler.pass(&mut self.io);
        // Whole-pass wall time normalized per live UE: the per-UE
        // handler-pass cost the bench reports percentiles of.
        if let Some(per_ue_ns) = watch.elapsed_ns().checked_div(live) {
            self.hist.record(per_ue_ns);
        }
        self.pass += 1;
        self.lanes.iter().all(|l| l.done)
    }

    /// Steps passes until every lane is done.
    pub fn run_to_completion(&mut self) {
        while !self.step_pass() {}
    }

    /// Finalizes every lane into its [`RunResult`].
    pub fn finish(self) -> ShardOutput {
        let Self {
            mut lanes,
            handler,
            hist,
            pass,
            ..
        } = self;
        let mut results = Vec::with_capacity(lanes.len());
        for lane in lanes.iter_mut() {
            let sl = lane.sl.take().expect("lane already finished");
            let r = sl.finish(&mut lane.sim, lane.strategy.as_mut());
            results.push((lane.ue, r));
        }
        ShardOutput {
            results,
            handler,
            pass_latency: hist,
            passes: pass,
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet report
// ---------------------------------------------------------------------------

/// One fleet member's terminal outcome.
#[derive(Clone, Copy, Debug)]
pub struct UeOutcome {
    /// Member index.
    pub ue: u32,
    /// The seed the member ran under ([`ue_seed`]).
    pub seed: u64,
    /// The member's single-link run digest.
    pub digest: u64,
    /// Headline reliability of the member's run.
    pub reliability: f64,
    /// Whether the handler left the member's link established
    /// (Steady/Degraded). True for resumed members (journaled ok).
    pub established: bool,
    /// True when the member was resumed from the journal, not re-run.
    pub resumed: bool,
}

/// The whole fleet's outcome.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Aggregate scenario id (`fleet:{base}:{n}`).
    pub scenario: String,
    /// Strategy registry name.
    pub strategy: String,
    /// Fleet seed.
    pub seed: u64,
    /// Shard count the run used.
    pub shards: usize,
    /// Per-member outcomes in UE order.
    pub outcomes: Vec<UeOutcome>,
    /// Fleet digest ([`fleet_digest`]).
    pub digest: u64,
    /// Non-probing data slots executed this run (excludes resumed
    /// members).
    pub data_slots: u64,
    /// Max passes over shards.
    pub passes: u64,
    /// Per-UE-normalized handler-pass latency, merged across shards.
    pub pass_latency: LatencyHist,
    /// Shared-environment cache counters (zeros unless `perf-counters`).
    pub cache: SharedSceneCounters,
    /// Wall-clock for the execution phase, nanoseconds.
    pub elapsed_ns: u64,
}

impl FleetReport {
    /// Executed UE-slot throughput (data slots per wall second).
    pub fn ue_slots_per_s(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.data_slots as f64 / (self.elapsed_ns as f64 * 1e-9)
    }

    /// Members resumed from the journal.
    pub fn resumed(&self) -> usize {
        self.outcomes.iter().filter(|o| o.resumed).count()
    }

    /// Mean member reliability.
    pub fn mean_reliability(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.reliability).sum::<f64>() / self.outcomes.len() as f64
    }
}

fn per_ue_entry(cfg: &FleetConfig, ue: u32, r: &RunResult) -> JournalEntry {
    let (fault, impairment) = ue_mix_specs(&cfg.mix, ue);
    JournalEntry {
        scenario: fleet_ue_scenario_id(&cfg.scenario, cfg.n_ues, ue),
        strategy: cfg.strategy.clone(),
        seed: ue_seed(cfg.seed, ue),
        fault,
        status: "ok".to_string(),
        attempts: 1,
        digest: r.digest(),
        tick_budget: None,
        reliability: r.reliability(),
        message: String::new(),
        features: compiled_features(),
        impairment,
    }
}

fn aggregate_entry(cfg: &FleetConfig, report: &FleetReport) -> JournalEntry {
    let (fault, impairment) = mix_fields(&cfg.mix);
    JournalEntry {
        scenario: fleet_scenario_id(&cfg.scenario, cfg.n_ues),
        strategy: cfg.strategy.clone(),
        seed: cfg.seed,
        fault,
        status: "ok".to_string(),
        attempts: 1,
        digest: report.digest,
        tick_budget: None,
        reliability: report.mean_reliability(),
        message: String::new(),
        features: compiled_features(),
        impairment,
    }
}

// ---------------------------------------------------------------------------
// The fleet scheduler
// ---------------------------------------------------------------------------

/// Runs the fleet to completion: resolves resumed members from the
/// journal, shards the rest deterministically, executes shards across
/// worker threads, and assembles the thread-count-invariant fleet digest.
pub fn run_fleet(cfg: &FleetConfig) -> Result<FleetReport, String> {
    cfg.validate()?;
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.threads
    };
    let shards = if cfg.shards == 0 { threads } else { cfg.shards };

    // Resume: a journaled ok per-UE line with the exact identity this
    // fleet would write (scenario form, seed, strategy, and the member's
    // derived fault/impairment specs) supplies that member's digest
    // without re-running it. Pre-mix journals wrote empty schedule fields;
    // those match a clean member.
    let spec_matches =
        |field: &str, expected: &str| field == expected || (expected == "none" && field.is_empty());
    let n = cfg.n_ues as usize;
    let mut resumed: Vec<Option<(u64, f64)>> = vec![None; n];
    let mut journal_lines: Vec<String> = Vec::new();
    if let Some(path) = &cfg.journal {
        for e in load_journal(path)? {
            let keep = e.to_json();
            if e.status == "ok" && e.strategy == cfg.strategy {
                if let Some(FleetScenarioRef::PerUe { base, n_ues, ue }) =
                    parse_fleet_scenario(&e.scenario)
                {
                    let (exp_fault, exp_imp) = ue_mix_specs(&cfg.mix, ue);
                    if base == cfg.scenario
                        && n_ues == cfg.n_ues
                        && ue < cfg.n_ues
                        && e.seed == ue_seed(cfg.seed, ue)
                        && spec_matches(&e.fault, &exp_fault)
                        && spec_matches(&e.impairment, &exp_imp)
                    {
                        resumed[ue as usize] = Some((e.digest, e.reliability));
                    }
                }
            }
            journal_lines.push(keep);
        }
    }

    // Deterministic sharding of the members still to run.
    let mut shard_ues: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for ue in 0..cfg.n_ues {
        if resumed[ue as usize].is_none() {
            shard_ues[shard_of(cfg.seed, ue, shards)].push(ue);
        }
    }

    // The shared environment: per-wall gNB images computed once for the
    // whole cell. Scene geometry is seed-independent for every registry
    // scenario; `FleetShard::new` double-checks per lane anyway.
    let reference = build_scenario(&cfg.scenario, cfg.seed)
        .ok_or_else(|| format!("unknown scenario {:?}", cfg.scenario))?;
    let cache = Arc::new(SharedSceneCache::build(&reference.dynamic.scene));

    let watch = StopWatch::start();
    let journal = cfg
        .journal
        .as_ref()
        .map(|p| Mutex::new((p.clone(), journal_lines)));
    let next_shard = AtomicUsize::new(0);
    let outputs: Mutex<Vec<ShardOutput>> = Mutex::new(Vec::new());
    let first_err: Mutex<Option<String>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shards) {
            scope.spawn(|| loop {
                let s = next_shard.fetch_add(1, Ordering::Relaxed);
                if s >= shards {
                    break;
                }
                if shard_ues[s].is_empty() {
                    continue;
                }
                let mut shard = match FleetShard::new(cfg, &shard_ues[s], Some(&cache)) {
                    Ok(shard) => shard,
                    Err(e) => {
                        first_err.lock().expect("poisoned").get_or_insert(e);
                        break;
                    }
                };
                shard.run_to_completion();
                let out = shard.finish();
                if let Some(j) = &journal {
                    let mut guard = j.lock().expect("poisoned");
                    let (path, lines) = &mut *guard;
                    for (ue, r) in &out.results {
                        lines.push(per_ue_entry(cfg, *ue, r).to_json());
                    }
                    if let Err(e) = write_lines_atomic(path, lines) {
                        drop(guard);
                        first_err.lock().expect("poisoned").get_or_insert(e);
                        break;
                    }
                }
                outputs.lock().expect("poisoned").push(out);
            });
        }
    });
    if let Some(e) = first_err.into_inner().expect("poisoned") {
        return Err(e);
    }
    let elapsed_ns = watch.elapsed_ns();

    // Assemble in UE order: resumed members from the journal, executed
    // members from their shard outputs.
    let mut per_ue: Vec<Option<UeOutcome>> = resumed
        .iter()
        .enumerate()
        .map(|(ue, r)| {
            r.map(|(digest, reliability)| UeOutcome {
                ue: ue as u32,
                seed: ue_seed(cfg.seed, ue as u32),
                digest,
                reliability,
                established: true,
                resumed: true,
            })
        })
        .collect();
    let mut data_slots = 0u64;
    let mut pass_latency = LatencyHist::new();
    let mut passes = 0u64;
    #[cfg(feature = "telemetry")]
    let mut registry = cfg
        .metrics
        .as_ref()
        .map(|_| mmwave_telemetry::MetricsRegistry::new());
    #[cfg(not(feature = "telemetry"))]
    if cfg.metrics.is_some() {
        eprintln!("note: --metrics requested but the `telemetry` feature is off; skipping");
    }
    for out in outputs.into_inner().expect("poisoned") {
        let ShardOutput {
            results,
            handler,
            pass_latency: shard_hist,
            passes: shard_passes,
        } = out;
        #[cfg(feature = "telemetry")]
        if let Some(reg) = registry.as_mut() {
            handler.publish_metrics(reg);
        }
        pass_latency.merge(&shard_hist);
        passes = passes.max(shard_passes);
        for (ue, r) in results {
            r.validate()?;
            data_slots += r.samples.iter().filter(|s| !s.probing).count() as u64;
            let established = handler.state(UeId(ue)).is_some_and(|s| s.is_established());
            per_ue[ue as usize] = Some(UeOutcome {
                ue,
                seed: ue_seed(cfg.seed, ue),
                digest: r.digest(),
                reliability: r.reliability(),
                established,
                resumed: false,
            });
        }
    }
    let outcomes: Vec<UeOutcome> = per_ue
        .into_iter()
        .enumerate()
        .map(|(ue, o)| o.ok_or_else(|| format!("internal: ue{ue} produced no outcome")))
        .collect::<Result<_, _>>()?;
    let digest = fleet_digest(&outcomes);
    let report = FleetReport {
        scenario: fleet_scenario_id(&cfg.scenario, cfg.n_ues),
        strategy: cfg.strategy.clone(),
        seed: cfg.seed,
        shards,
        outcomes,
        digest,
        data_slots,
        passes,
        pass_latency,
        cache: cache.counters(),
        elapsed_ns,
    };
    if let Some(j) = &journal {
        let mut guard = j.lock().expect("poisoned");
        let (path, lines) = &mut *guard;
        lines.push(aggregate_entry(cfg, &report).to_json());
        write_lines_atomic(path, lines)?;
    }
    #[cfg(feature = "telemetry")]
    if let (Some(path), Some(mut reg)) = (cfg.metrics.as_ref(), registry.take()) {
        let fleet = reg.resource(&report.scenario);
        let c_passes = reg.counter(fleet, "passes");
        let c_data = reg.counter(fleet, "data_slots");
        let c_imgs = reg.counter(fleet, "cache_images_built");
        let c_traces = reg.counter(fleet, "cache_traces_served");
        let c_mirror = reg.counter(fleet, "cache_mirror_ops_saved");
        let h_pass = reg.histogram(fleet, "pass_latency_ns");
        reg.set_counter(c_passes, report.passes);
        reg.set_counter(c_data, report.data_slots);
        reg.set_counter(c_imgs, report.cache.images_built);
        reg.set_counter(c_traces, report.cache.traces_served);
        reg.set_counter(c_mirror, report.cache.mirror_ops_saved);
        reg.merge_hist(h_pass, &report.pass_latency);
        write_lines_atomic(path, &reg.snapshot_jsonl())?;
    }
    Ok(report)
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

/// What a fleet journal line replays into.
pub enum FleetReplay {
    /// A per-UE line re-executed as a plain single-link cell
    /// (bit-identical to the member's in-fleet run).
    PerUe {
        /// The re-executed run.
        result: Box<RunResult>,
        /// Its digest.
        digest: u64,
    },
    /// An aggregate line re-executed as a one-thread, one-shard fleet
    /// under the default pass cadence.
    Aggregate {
        /// The re-executed fleet.
        report: Box<FleetReport>,
    },
}

/// Re-executes one fleet journal line. Per-UE entries rebuild the
/// member's single-link cell from the registry — the shared cache and
/// `SlotLoop` stepping are both arithmetic-neutral, so the standalone
/// re-run reproduces the in-fleet digest bit-for-bit. Aggregate entries
/// re-run the whole fleet single-threaded.
pub fn replay_fleet_entry(entry: &JournalEntry) -> Result<FleetReplay, String> {
    let parsed = parse_fleet_scenario(&entry.scenario).ok_or_else(|| {
        format!(
            "scenario {:?} is not a fleet form this binary understands",
            entry.scenario
        )
    })?;
    match parsed {
        FleetScenarioRef::PerUe { base, .. } => {
            let mut single = entry.clone();
            single.scenario = base;
            if single.impairment.is_empty() {
                single.impairment = "none".to_string();
            }
            if single.fault.is_empty() {
                single.fault = "none".to_string();
            }
            let (result, digest) = crate::campaign::replay_cell(&single).map_err(|f| f.message)?;
            Ok(FleetReplay::PerUe {
                result: Box::new(result),
                digest,
            })
        }
        FleetScenarioRef::Aggregate { base, n_ues } => {
            let mix = parse_mix_fields(&entry.fault, &entry.impairment)
                .map_err(|e| format!("aggregate entry mix fields: {e}"))?;
            let cfg = FleetConfig {
                scenario: base,
                strategy: entry.strategy.clone(),
                n_ues,
                seed: entry.seed,
                threads: 1,
                shards: 1,
                pass_period_s: PASS_PERIOD_S,
                journal: None,
                mix,
                metrics: None,
            };
            let report = run_fleet(&cfg)?;
            Ok(FleetReplay::Aggregate {
                report: Box::new(report),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_id_round_trips() {
        let agg = fleet_scenario_id("static-walker", 64);
        assert_eq!(
            parse_fleet_scenario(&agg),
            Some(FleetScenarioRef::Aggregate {
                base: "static-walker".to_string(),
                n_ues: 64
            })
        );
        let ue = fleet_ue_scenario_id("static-walker", 64, 7);
        assert_eq!(
            parse_fleet_scenario(&ue),
            Some(FleetScenarioRef::PerUe {
                base: "static-walker".to_string(),
                n_ues: 64,
                ue: 7
            })
        );
        assert_eq!(parse_fleet_scenario("static-walker"), None);
        assert_eq!(parse_fleet_scenario("fleet:x"), None);
        assert_eq!(parse_fleet_scenario("fleet:x:0"), None);
        assert_eq!(parse_fleet_scenario("fleet:x:4:7"), None);
    }

    fn entry_with_scenario(scenario: &str) -> JournalEntry {
        JournalEntry {
            scenario: scenario.to_string(),
            strategy: "single-beam-reactive".to_string(),
            seed: 42,
            fault: "none".to_string(),
            status: "ok".to_string(),
            attempts: 1,
            digest: 1,
            tick_budget: None,
            reliability: 1.0,
            message: String::new(),
            features: String::new(),
            impairment: "none".to_string(),
        }
    }

    #[test]
    fn fleet_note_warns_on_unknown_forms_only() {
        assert!(fleet_note(&entry_with_scenario("static-walker")).is_none());
        assert!(fleet_note(&entry_with_scenario("fleet:static-walker:8")).is_none());
        assert!(fleet_note(&entry_with_scenario("fleet:static-walker:8:ue3")).is_none());
        assert!(fleet_note(&entry_with_scenario("fleet:weird:form:x:y")).is_some());
        assert!(fleet_note(&entry_with_scenario("fleet:no-such-scene:8")).is_some());
        assert!(fleet_note(&entry_with_scenario("fleet:static-walker:8:ue9")).is_some());
    }

    #[test]
    fn sharding_is_total_and_deterministic() {
        for shards in [1usize, 2, 3, 7] {
            let mut counts = vec![0u32; shards];
            for ue in 0..100u32 {
                let s = shard_of(42, ue, shards);
                assert_eq!(s, shard_of(42, ue, shards));
                counts[s] += 1;
            }
            assert_eq!(counts.iter().sum::<u32>(), 100);
        }
    }

    #[test]
    fn fleet_of_one_is_bit_identical_to_single_link() {
        let cfg = FleetConfig {
            threads: 1,
            shards: 1,
            ..FleetConfig::new("static-walker", "single-beam-reactive", 1, 42)
        };
        let report = run_fleet(&cfg).expect("fleet runs");
        let sc = build_scenario("static-walker", 42).unwrap();
        let mut strategy = build_strategy("single-beam-reactive").unwrap();
        let single = sc.simulator(42).run_with_warmup(
            strategy.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        );
        assert_eq!(
            report.outcomes[0].digest,
            single.digest(),
            "fleet of size 1 must reproduce the single-link pipeline bit-identically"
        );
        assert!(report.outcomes[0].established);
        assert!(report.data_slots > 0);
    }

    #[test]
    fn digest_is_invariant_to_threads_and_shards() {
        let run = |threads: usize, shards: usize| {
            let cfg = FleetConfig {
                threads,
                shards,
                ..FleetConfig::new("translation-1s", "single-beam-reactive", 5, 7)
            };
            run_fleet(&cfg).expect("fleet runs").digest
        };
        let base = run(1, 1);
        assert_eq!(base, run(2, 2));
        assert_eq!(base, run(2, 5));
        assert_eq!(base, run(4, 3));
    }
}
