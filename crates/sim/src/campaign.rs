//! The resilient campaign supervisor: watchdogged sweeps with
//! checkpoint/resume, bounded retry, and deterministic failure replay.
//!
//! A *campaign* is a set of (scenario, strategy, seed, fault-schedule)
//! cells — the cross product behind a paper figure or an overnight chaos
//! soak. [`run_campaign`] plays the cells on a bounded worker pool and
//! keeps the sweep alive through everything the runs can throw at it:
//!
//! - **Watchdog deadlines** — a dedicated watchdog thread polls every
//!   in-flight run against its wall-clock deadline and flips the run's
//!   [`CancelToken`]; the simulator's cooperative checkpoints unwind with
//!   [`CancelUnwind`], which the supervisor classifies as a
//!   [`FailureKind::Timeout`] rather than a crash. Tests and replays use
//!   deterministic *tick budgets* instead of wall clocks, so a recorded
//!   timeout reproduces at exactly the same simulated instant.
//! - **Failure classification + bounded retry** — a run that panics or
//!   times out is retried up to [`CampaignConfig::max_attempts`] times
//!   with exponential backoff and deterministic jitter (see
//!   [`backoff_delay`]); a run that fails *validation* (bad fault spec,
//!   structurally-garbage result) is terminal immediately, since it would
//!   fail identically on every retry.
//! - **Crash-consistent journal** — every terminal outcome appends one
//!   JSONL line (atomically: full rewrite to a temp file + rename) with
//!   the cell key, status, attempts, and a 64-bit result digest. A
//!   campaign pointed at an existing journal *resumes*: journaled cells
//!   are skipped, so an interrupted overnight sweep completes without
//!   rerunning finished seeds and without duplicating any cell.
//! - **Telemetry capture** — with a [`TelemetrySpec`] configured, every
//!   cell runs under a ring-buffered tracer (see `mmwave-telemetry`);
//!   completed and terminally-failed cells drain into a cell-tagged JSONL
//!   trace (same crash-consistent write idiom as the journal), per-stage
//!   latency histograms merge campaign-wide onto the report, and an
//!   optional Chrome-trace-format file renders the whole sweep in
//!   Perfetto. With [`CampaignConfig::progress`] on, a heartbeat line
//!   (cells done/retried/shed, busy workers, ETA) ticks on stderr.
//! - **Graceful degradation** — when the campaign-level deadline expires,
//!   pending cells are *shed* (the queue is priority-ordered, so the shed
//!   cells are the lowest-priority ones) and counted in the report;
//!   in-flight runs finish. Nothing is silently truncated.
//!
//! Every failed cell carries its full repro tuple; `mmwave-bench`'s
//! `replay` binary feeds a journal line to [`replay_cell`], which re-runs
//! exactly that cell single-threaded and checks the digest.
//!
//! Determinism contract: a zero-fault campaign produces results
//! bit-identical to [`crate::runner::run_many`] over the same seeds,
//! independent of worker count — each cell's simulator is seeded from its
//! key alone, and the supervisor machinery (tokens, watchdog, journal)
//! never perturbs a run that completes.

use crate::faults::{FaultInjector, FaultSchedule};
use crate::impairments::{ImpairedFrontEnd, ImpairmentConfig};
use crate::metrics::RunResult;
use crate::runner::panic_msg;
use crate::scenario::{self, Scenario};
use mmreliable::cancel::{is_cancel_unwind, CancelToken, CancelUnwind};
use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::beamspy::{BeamSpy, BeamSpyConfig};
use mmwave_baselines::nr_periodic::{NrPeriodic, NrPeriodicConfig};
use mmwave_baselines::single_reactive::{ReactiveConfig, SingleBeamReactive};
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::widebeam::{WideBeamConfig, WideBeamStrategy};
use mmwave_telemetry::{LatencyHist, RingBufferSink, RunLatency, TraceEvent, Tracer, STAGE_COUNT};
use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Cell identity
// ---------------------------------------------------------------------------

/// The full repro tuple of one campaign cell. Two cells with equal keys are
/// the same experiment: the key alone (plus the registry) is enough to
/// rebuild and re-run the cell bit-identically.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Scenario registry name (see [`build_scenario`]) or a free-form label
    /// for closure-built jobs.
    pub scenario: String,
    /// Strategy registry name (see [`build_strategy`]) or a free-form
    /// label.
    pub strategy: String,
    /// Simulator seed.
    pub seed: u64,
    /// Canonical fault-schedule spec ([`FaultSchedule::spec_string`]).
    pub fault_spec: String,
    /// Canonical hardware-impairment spec
    /// ([`ImpairmentConfig::spec_string`]); `"none"` for a clean front end.
    pub impairment_spec: String,
}

impl CellKey {
    /// Canonical one-line identity, used for journal deduplication. Cells
    /// with a clean front end keep the historical four-segment form so old
    /// journals (and pinned CI cell ids) still match; an impairment spec
    /// adds a fifth segment.
    pub fn id(&self) -> String {
        if self.impairment_spec == "none" {
            format!(
                "{}//{}//{}//{}",
                self.scenario, self.strategy, self.seed, self.fault_spec
            )
        } else {
            format!(
                "{}//{}//{}//{}//{}",
                self.scenario, self.strategy, self.seed, self.fault_spec, self.impairment_spec
            )
        }
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} × {} (seed {}, faults {}",
            self.scenario, self.strategy, self.seed, self.fault_spec
        )?;
        if self.impairment_spec != "none" {
            write!(f, ", impairments {}", self.impairment_spec)?;
        }
        write!(f, ")")
    }
}

// ---------------------------------------------------------------------------
// Registry: named scenarios and strategies (the replay vocabulary)
// ---------------------------------------------------------------------------

/// Scenario names [`build_scenario`] understands, matching each library
/// builder's own display name.
pub const SCENARIO_NAMES: &[&str] = &[
    "static-walker",
    "mobile-blockage",
    "translation-1s",
    "gnb-rotation",
    "rotation-blockage",
    "outdoor",
    "natural-motion",
    "appendix-b-28ghz",
    "appendix-b-60ghz",
];

/// Strategy names [`build_strategy`] understands.
pub const STRATEGY_NAMES: &[&str] = &[
    "mmreliable",
    "single-beam-reactive",
    "nr-periodic",
    "wide-beam",
    "beam-spy",
];

/// Builds a library scenario by registry name. `seed` parameterizes the
/// seeded builders (blockage draw); deterministic builders ignore it.
pub fn build_scenario(name: &str, seed: u64) -> Option<Scenario> {
    Some(match name {
        "static-walker" => scenario::static_walker(),
        "mobile-blockage" => scenario::mobile_blockage(seed),
        "translation-1s" => scenario::translation_1s(),
        "gnb-rotation" => scenario::gnb_rotation(24.0),
        "rotation-blockage" => scenario::rotation_blockage(seed),
        "outdoor" => scenario::outdoor(30.0, seed),
        "natural-motion" => scenario::natural_motion(seed),
        "appendix-b-28ghz" => scenario::appendix_b(false),
        "appendix-b-60ghz" => scenario::appendix_b(true),
        // Serialized world specs (`spec:v1:…`) build through the same
        // entry point, so spec cells journal, resume, and replay exactly
        // like registry cells.
        _ if name.starts_with("spec:") => {
            return crate::spec::WorldSpec::parse(name)
                .ok()
                .and_then(|w| w.build(seed).ok())
        }
        _ => return None,
    })
}

/// Builds a fresh strategy instance by registry name.
pub fn build_strategy(name: &str) -> Option<Box<dyn BeamStrategy + Send>> {
    Some(match name {
        "mmreliable" => Box::new(MmReliableStrategy::new(MmReliableController::new(
            MmReliableConfig::paper_default(),
        ))),
        "single-beam-reactive" => Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
        "nr-periodic" => Box::new(NrPeriodic::new(NrPeriodicConfig::default())),
        "wide-beam" => Box::new(WideBeamStrategy::new(WideBeamConfig::default())),
        "beam-spy" => Box::new(BeamSpy::new(BeamSpyConfig::default())),
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// What a job's builder produces: a scenario (with its fault schedule) and
/// a fresh strategy instance.
pub struct JobSetup {
    /// The fully-specified experiment.
    pub scenario: Scenario,
    /// The strategy to play it against.
    pub strategy: Box<dyn BeamStrategy + Send>,
}

type JobBuilder = Arc<dyn Fn(&CellKey) -> Result<JobSetup, String> + Send + Sync>;

/// One schedulable campaign cell.
pub struct Job {
    /// The cell's repro tuple.
    pub key: CellKey,
    /// Scheduling priority; higher runs first. Under a campaign deadline
    /// the lowest-priority pending cells are the ones shed.
    pub priority: u32,
    /// Deterministic per-run tick budget (overrides
    /// [`CampaignConfig::tick_budget`]). The run cancels cooperatively
    /// after this many maintenance ticks — the reproducible stand-in for a
    /// wall-clock timeout.
    pub tick_budget: Option<u64>,
    builder: JobBuilder,
}

impl Job {
    /// A registry job: the cell is rebuilt from names alone, so it is
    /// replayable from its journal line. Fails fast on unknown names or an
    /// invalid fault schedule.
    pub fn from_registry(
        scenario: &str,
        strategy: &str,
        seed: u64,
        fault: FaultSchedule,
        priority: u32,
    ) -> Result<Self, String> {
        fault.validate()?;
        build_scenario(scenario, seed)
            .ok_or_else(|| format!("unknown scenario {scenario:?} (known: {SCENARIO_NAMES:?})"))?;
        build_strategy(strategy)
            .ok_or_else(|| format!("unknown strategy {strategy:?} (known: {STRATEGY_NAMES:?})"))?;
        let key = CellKey {
            scenario: scenario.to_string(),
            strategy: strategy.to_string(),
            seed,
            fault_spec: fault.spec_string(),
            impairment_spec: "none".to_string(),
        };
        Ok(Self {
            key,
            priority,
            tick_budget: None,
            builder: Arc::new(registry_builder),
        })
    }

    /// A job built from a serialized scenario spec: the spec's cell key is
    /// the job identity, and since [`build_scenario`] rebuilds `spec:`-form
    /// worlds from their names, the cell stays replayable from its journal
    /// line like any registry cell. Fleet specs are not campaign cells —
    /// run those through [`crate::spec::ScenarioSpec::fleet_config`].
    pub fn from_spec(spec: &crate::spec::ScenarioSpec, priority: u32) -> Result<Self, String> {
        spec.validate().map_err(|e| e.to_string())?;
        if spec.fleet.is_some() {
            return Err(
                "fleet specs run through run_fleet, not the campaign supervisor".to_string(),
            );
        }
        Ok(Self {
            key: spec.cell_key(),
            priority,
            tick_budget: None,
            builder: Arc::new(registry_builder),
        })
    }

    /// Attaches a hardware-impairment configuration to a registry job. The
    /// spec becomes part of the cell identity, so impaired and clean runs of
    /// the same (scenario, strategy, seed, fault) are distinct journal
    /// cells. Fails fast on an invalid configuration.
    pub fn with_impairments(mut self, config: &ImpairmentConfig) -> Result<Self, String> {
        config.validate()?;
        self.key.impairment_spec = config.spec_string();
        Ok(self)
    }

    /// A custom job built from an arbitrary setup closure. The key is the
    /// cell's identity in the journal; like [`closure_jobs`] cells, custom
    /// cells are not replayable from names alone.
    pub fn custom(
        key: CellKey,
        builder: impl Fn(&CellKey) -> Result<JobSetup, String> + Send + Sync + 'static,
    ) -> Self {
        Self {
            key,
            priority: 0,
            tick_budget: None,
            builder: Arc::new(builder),
        }
    }

    /// Sets the deterministic tick budget.
    pub fn with_tick_budget(mut self, budget: u64) -> Self {
        self.tick_budget = Some(budget);
        self
    }

    /// Sets the scheduling priority.
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// The builder every registry job shares: rebuild scenario + strategy +
/// fault schedule from the key.
fn registry_builder(key: &CellKey) -> Result<JobSetup, String> {
    let fault = FaultSchedule::parse_spec(&key.fault_spec)?;
    let impairment = ImpairmentConfig::parse_spec(&key.impairment_spec)?;
    let scenario = build_scenario(&key.scenario, key.seed)
        .ok_or_else(|| format!("unknown scenario {:?}", key.scenario))?
        .with_faults(fault)
        .map_err(|e| e.to_string())?
        .with_impairments(impairment)
        .map_err(|e| e.to_string())?;
    let strategy = build_strategy(&key.strategy)
        .ok_or_else(|| format!("unknown strategy {:?}", key.strategy))?;
    Ok(JobSetup { scenario, strategy })
}

/// Closure-built jobs for sweeps over configurations the registry does not
/// name (ablation studies): one job per seed, mirroring
/// [`crate::runner::run_many`]'s seeding (`base_seed + run_idx`). The
/// labels identify the cells in the journal; such cells are not replayable
/// from names alone.
pub fn closure_jobs<S, F>(
    n_runs: usize,
    base_seed: u64,
    scenario_label: &str,
    strategy_label: &str,
    scenario_fn: S,
    strategy_fn: F,
) -> Vec<Job>
where
    S: Fn(u64) -> Scenario + Send + Sync + 'static,
    F: Fn() -> Box<dyn BeamStrategy + Send> + Send + Sync + 'static,
{
    let scenario_fn = Arc::new(scenario_fn);
    let strategy_fn = Arc::new(strategy_fn);
    (0..n_runs)
        .map(|i| {
            let seed = base_seed.wrapping_add(i as u64);
            let sf = Arc::clone(&scenario_fn);
            let tf = Arc::clone(&strategy_fn);
            Job {
                key: CellKey {
                    scenario: scenario_label.to_string(),
                    strategy: strategy_label.to_string(),
                    seed,
                    fault_spec: "none".to_string(),
                    impairment_spec: "none".to_string(),
                },
                priority: 0,
                tick_budget: None,
                builder: Arc::new(move |key: &CellKey| {
                    Ok(JobSetup {
                        scenario: sf(key.seed),
                        strategy: tf(),
                    })
                }),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Hook invoked at the start of every attempt (inside the supervised
/// unwind boundary) — chaos tests inject panics and hangs here.
pub type PreRunHook = Arc<dyn Fn(&CellKey, u32) + Send + Sync>;

/// The observability feature set this binary was compiled with, as a
/// canonical comma-joined string. Recorded on every journal entry so a
/// replay binary built with a different feature set can flag that
/// counters/latency differ while the simulation payload stays
/// bit-identical (neither is part of the digest).
pub fn compiled_features() -> String {
    let mut f: Vec<&str> = Vec::new();
    if cfg!(feature = "perf-counters") {
        f.push("perf-counters");
    }
    if cfg!(feature = "telemetry") {
        f.push("telemetry");
    }
    f.join(",")
}

/// Telemetry capture policy for a campaign. Requires the `telemetry`
/// feature to produce data: without it the tracers are installed but no
/// instrumentation call sites exist, so traces come back empty.
#[derive(Clone, Debug)]
pub struct TelemetrySpec {
    /// Cell-tagged JSONL trace path (one event per line, each carrying its
    /// cell id). Rewritten from scratch each campaign with the journal's
    /// crash-consistent tmp + rename idiom; resumed cells re-run nothing
    /// and so contribute no trace.
    pub trace: Option<PathBuf>,
    /// Chrome-trace-format (Perfetto `chrome://tracing`) output path, one
    /// process per cell, written once after the campaign completes.
    pub chrome_trace: Option<PathBuf>,
    /// Keep every `decimation`-th per-slot sample (≥ 1).
    pub decimation: u64,
    /// Per-cell event ring capacity; the oldest events beyond it are
    /// dropped (and counted).
    pub ring_capacity: usize,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self {
            trace: None,
            chrome_trace: None,
            decimation: 8,
            ring_capacity: 1 << 16,
        }
    }
}

/// Supervisor policy for one campaign.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Worker threads; `0` means every available core.
    pub threads: usize,
    /// Per-run wall-clock deadline enforced by the watchdog thread.
    /// `None` disables wall-clock supervision (tick budgets still apply).
    pub run_deadline: Option<Duration>,
    /// Campaign-level wall-clock deadline: once exceeded, pending cells
    /// are shed (lowest priority first, by queue construction) and counted
    /// in the report. In-flight runs finish.
    pub campaign_deadline: Option<Duration>,
    /// Total attempts per cell (1 = no retries) for transient failures.
    pub max_attempts: u32,
    /// Backoff before retry #1 (doubling per attempt by
    /// [`CampaignConfig::backoff_factor`]).
    pub backoff_base: Duration,
    /// Multiplier applied per additional attempt.
    pub backoff_factor: f64,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Campaign seed: the only input (besides the cell key and attempt
    /// number) to the deterministic backoff jitter.
    pub seed: u64,
    /// Journal path. `Some` enables crash-consistent journaling *and*
    /// resume-from-journal.
    pub journal: Option<PathBuf>,
    /// Default deterministic tick budget for every run (overridable per
    /// job).
    pub tick_budget: Option<u64>,
    /// Chaos-injection hook (see [`PreRunHook`]).
    pub pre_run_hook: Option<PreRunHook>,
    /// Per-cell telemetry capture (see [`TelemetrySpec`]). `None` runs
    /// every cell with a disabled tracer — zero overhead.
    pub telemetry: Option<TelemetrySpec>,
    /// Emit a live heartbeat line on stderr (~2 Hz): cells done / retried
    /// / shed, busy workers, and an ETA extrapolated from throughput.
    pub progress: bool,
    /// Metrics-registry snapshot (JSONL) output path: per-cell attempts
    /// and reliability, campaign-level completion counters, and the
    /// merged per-stage latency histograms. `None` skips the capture.
    pub metrics: Option<PathBuf>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            run_deadline: None,
            campaign_deadline: None,
            max_attempts: 3,
            backoff_base: Duration::from_millis(25),
            backoff_factor: 2.0,
            backoff_max: Duration::from_secs(1),
            seed: 0,
            journal: None,
            tick_budget: None,
            pre_run_hook: None,
            telemetry: None,
            progress: false,
            metrics: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Outcomes
// ---------------------------------------------------------------------------

/// Why a cell failed terminally.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The run panicked (a crash — retryable, in case it was environmental).
    Panic,
    /// The run was cancelled at a cooperative checkpoint (wall-clock
    /// deadline or tick budget — retryable).
    Timeout,
    /// The cell is structurally invalid (bad fault spec, unknown name,
    /// garbage result) — deterministic, never retried.
    Validation,
}

impl FailureKind {
    /// Whether the supervisor retries this failure class.
    pub fn retryable(self) -> bool {
        !matches!(self, FailureKind::Validation)
    }

    /// Journal status string.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::Validation => "validation",
        }
    }

    /// Parses a journal status string (excluding `"ok"`).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "panic" => FailureKind::Panic,
            "timeout" => FailureKind::Timeout,
            "validation" => FailureKind::Validation,
            _ => return None,
        })
    }
}

/// A terminal failure with its classification and last error message.
#[derive(Clone, Debug)]
pub struct CampaignFailure {
    /// Failure class.
    pub kind: FailureKind,
    /// Message from the final attempt.
    pub message: String,
}

/// How one cell ended.
pub enum CellStatus {
    /// The run completed (and validated) this campaign.
    Completed {
        /// The full run record.
        result: Box<RunResult>,
        /// [`RunResult::digest`] of the record.
        digest: u64,
    },
    /// The cell was found in the journal and skipped.
    Resumed {
        /// The journal entry the cell was resumed from.
        entry: JournalEntry,
    },
    /// The cell failed terminally (after retries, if retryable).
    Failed {
        /// The classified failure.
        failure: CampaignFailure,
    },
    /// The cell was shed under the campaign deadline without running.
    Shed,
}

/// One cell's final report line.
pub struct CellOutcome {
    /// The cell's repro tuple.
    pub key: CellKey,
    /// Scheduling priority the cell ran (or was shed) at.
    pub priority: u32,
    /// Attempts consumed (0 for resumed or shed cells).
    pub attempts: u32,
    /// Terminal status.
    pub status: CellStatus,
}

/// The campaign's full report, one outcome per submitted job, in
/// submission order.
pub struct CampaignReport {
    /// Per-cell outcomes, indexed like the submitted job list.
    pub outcomes: Vec<CellOutcome>,
    /// Campaign-merged per-stage latency histograms, accumulated across
    /// every cell that ran with a tracer. All-empty unless the `telemetry`
    /// feature is on and [`CampaignConfig::telemetry`] was set.
    pub hists: [LatencyHist; STAGE_COUNT],
}

impl CampaignReport {
    /// Percentile digests of the campaign-merged latency histograms.
    pub fn latency(&self) -> RunLatency {
        RunLatency {
            stages: std::array::from_fn(|i| self.hists[i].summary()),
        }
    }

    /// Results of cells completed *this* campaign, in submission order.
    pub fn results(&self) -> Vec<&RunResult> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                CellStatus::Completed { result, .. } => Some(result.as_ref()),
                _ => None,
            })
            .collect()
    }

    /// Terminal failures, with their keys.
    pub fn failures(&self) -> Vec<(&CellKey, &CampaignFailure)> {
        self.outcomes
            .iter()
            .filter_map(|o| match &o.status {
                CellStatus::Failed { failure } => Some((&o.key, failure)),
                _ => None,
            })
            .collect()
    }

    /// Number of cells shed under the campaign deadline.
    pub fn shed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, CellStatus::Shed))
            .count()
    }

    /// Number of cells skipped because the journal already had them.
    pub fn resumed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.status, CellStatus::Resumed { .. }))
            .count()
    }

    /// The digest recorded for a cell — whether it completed this campaign
    /// or was resumed from the journal of a previous one. `None` for shed
    /// cells and failures.
    pub fn digest_of(&self, key: &CellKey) -> Option<u64> {
        self.outcomes
            .iter()
            .find(|o| &o.key == key)
            .and_then(|o| match &o.status {
                CellStatus::Completed { digest, .. } => Some(*digest),
                CellStatus::Resumed { entry } if entry.status == "ok" => Some(entry.digest),
                _ => None,
            })
    }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

/// One journal line: a cell's terminal outcome.
#[derive(Clone, Debug, PartialEq)]
pub struct JournalEntry {
    /// Cell scenario name.
    pub scenario: String,
    /// Cell strategy name.
    pub strategy: String,
    /// Cell seed.
    pub seed: u64,
    /// Cell fault spec.
    pub fault: String,
    /// `"ok"`, `"panic"`, `"timeout"`, or `"validation"`.
    pub status: String,
    /// Attempts consumed.
    pub attempts: u32,
    /// Result digest (`0` for failures).
    pub digest: u64,
    /// Tick budget the run executed under (`None` = unlimited) — needed to
    /// replay a recorded timeout deterministically.
    pub tick_budget: Option<u64>,
    /// Headline reliability of an ok run (`0` for failures).
    pub reliability: f64,
    /// Final error message for failures (empty for ok).
    pub message: String,
    /// Observability features the recording binary was compiled with
    /// ([`compiled_features`]; empty for entries from older journals).
    pub features: String,
    /// Hardware-impairment spec the cell ran under (`"none"` for a clean
    /// front end; empty for entries from journals that predate the
    /// impairment layer).
    pub impairment: String,
}

impl JournalEntry {
    /// The cell key this entry records. A missing impairment field (journal
    /// written before the impairment layer) reads as a clean front end.
    pub fn key(&self) -> CellKey {
        CellKey {
            scenario: self.scenario.clone(),
            strategy: self.strategy.clone(),
            seed: self.seed,
            fault_spec: self.fault.clone(),
            impairment_spec: if self.impairment.is_empty() {
                "none".to_string()
            } else {
                self.impairment.clone()
            },
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"scenario":"{}","strategy":"{}","seed":{},"fault":"{}","status":"{}","attempts":{},"digest":"{:016x}","tick_budget":{},"reliability":{},"message":"{}","features":"{}","impairment":"{}"}}"#,
            json_escape(&self.scenario),
            json_escape(&self.strategy),
            self.seed,
            json_escape(&self.fault),
            json_escape(&self.status),
            self.attempts,
            self.digest,
            self.tick_budget
                .map_or_else(|| "null".to_string(), |b| b.to_string()),
            fmt_f64(self.reliability),
            json_escape(&self.message),
            json_escape(&self.features),
            json_escape(&self.impairment),
        )
    }

    /// Parses one journal line. `None` for malformed lines (a torn trailing
    /// write after a crash is expected and tolerated).
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim();
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        let digest_hex = json_str(line, "digest")?;
        Some(Self {
            scenario: json_str(line, "scenario")?,
            strategy: json_str(line, "strategy")?,
            seed: json_raw(line, "seed")?.parse().ok()?,
            fault: json_str(line, "fault")?,
            status: json_str(line, "status")?,
            attempts: json_raw(line, "attempts")?.parse().ok()?,
            digest: u64::from_str_radix(&digest_hex, 16).ok()?,
            tick_budget: match json_raw(line, "tick_budget")?.as_str() {
                "null" => None,
                n => Some(n.parse().ok()?),
            },
            reliability: json_raw(line, "reliability")?.parse().ok()?,
            message: json_str(line, "message")?,
            // Absent from journals written before the telemetry layer.
            features: json_str(line, "features").unwrap_or_default(),
            // Absent from journals written before the impairment layer.
            impairment: json_str(line, "impairment").unwrap_or_default(),
        })
    }
}

/// Compares a journal entry's recorded impairment spec against the current
/// binary's expectations and returns a human-readable caution when a replay
/// of that line may not be faithful: the entry predates the impairment
/// layer (field absent), or its spec no longer parses under the current
/// grammar. `None` means the spec is present and well-formed.
pub fn impairment_note(entry: &JournalEntry) -> Option<String> {
    if entry.impairment.is_empty() {
        return Some(
            "journal predates the hardware-impairment layer; replay assumes a clean front end"
                .to_string(),
        );
    }
    if let Err(e) = ImpairmentConfig::parse_spec(&entry.impairment) {
        return Some(format!(
            "recorded impairment spec {:?} does not parse under this binary ({e}); \
             replay will fail validation",
            entry.impairment
        ));
    }
    None
}

/// Loads a journal, tolerating a missing file and a torn trailing line.
pub fn load_journal(path: &Path) -> Result<Vec<JournalEntry>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read journal {}: {e}", path.display())),
    };
    let mut entries = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match JournalEntry::parse(line) {
            Some(e) => entries.push(e),
            // A torn line can only be the last thing written before a
            // crash; everything before it is intact.
            None => break,
        }
    }
    Ok(entries)
}

/// The crash-consistent journal writer: every append rewrites the full
/// line set to `<path>.tmp` and renames over `<path>`, so the journal on
/// disk is always a prefix-complete set of whole lines — a reader never
/// observes a torn entry produced by *this* writer.
struct JournalFile {
    path: PathBuf,
    lines: Vec<String>,
}

impl JournalFile {
    fn open(path: &Path, existing: &[JournalEntry]) -> Self {
        Self {
            path: path.to_path_buf(),
            lines: existing.iter().map(|e| e.to_json()).collect(),
        }
    }

    fn append(&mut self, entry: &JournalEntry) -> Result<(), String> {
        self.lines.push(entry.to_json());
        write_lines_atomic(&self.path, &self.lines)
    }
}

/// Rewrites `lines` (plus trailing newline) to `<path>.tmp` and renames
/// over `path`: the file on disk is always a whole-line prefix of the
/// writer's state, never a torn entry.
///
/// Public because it *is* the journal's commit protocol: the loom model
/// test (`tests/loom_journal.rs`, run under `RUSTFLAGS="--cfg loom"`)
/// drives this exact function from a writer thread while a concurrent
/// reader asserts that every observable file state is a whole-line prefix
/// of the writer's history — the crash-consistency argument, checked at
/// the concurrency seam rather than assumed.
pub fn write_lines_atomic(path: &Path, lines: &[String]) -> Result<(), String> {
    let tmp = path.with_extension("jsonl.tmp");
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let mut body = lines.join("\n");
    if !body.is_empty() {
        body.push('\n');
    }
    std::fs::write(&tmp, body).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} into place: {e}", path.display()))
}

/// Crash-consistent trace writer: each finished cell's event lines append
/// as one block via the same full-rewrite + rename idiom as the journal.
struct TraceFile {
    path: PathBuf,
    lines: Vec<String>,
}

impl TraceFile {
    fn create(path: &Path) -> Self {
        Self {
            path: path.to_path_buf(),
            lines: Vec::new(),
        }
    }

    fn append_cell(&mut self, lines: impl IntoIterator<Item = String>) -> Result<(), String> {
        self.lines.extend(lines);
        write_lines_atomic(&self.path, &self.lines)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Extracts the string value of `"key":"..."`, handling escapes.
fn json_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(json_unescape(&line[start..i])),
            _ => i += 1,
        }
    }
    None
}

/// Extracts the raw (non-string) value of `"key":...` up to `,` or `}`.
fn json_raw(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().to_string())
}

/// Formats an f64 so it round-trips through `str::parse` (and stays valid
/// JSON: no NaN/inf).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic retry delay before attempt `attempt + 1` (i.e. after
/// `attempt` failed attempts, `attempt >= 1`): exponential in the attempt
/// number, capped, then jittered into `[0.5, 1.0]×` by a seeded draw that
/// depends only on the campaign seed, the cell key, and the attempt — so a
/// replayed campaign backs off identically, while different cells decorrelate.
pub fn backoff_delay(cfg: &CampaignConfig, key: &CellKey, attempt: u32) -> Duration {
    let exp = cfg.backoff_factor.powi(attempt.saturating_sub(1) as i32);
    let raw = cfg.backoff_base.as_secs_f64() * exp;
    let capped = raw.min(cfg.backoff_max.as_secs_f64());
    let mut rng = mmwave_dsp::rng::Rng64::seed(
        cfg.seed
            ^ fnv1a(key.id().as_bytes())
            ^ (attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    Duration::from_secs_f64(capped * rng.uniform_in(0.5, 1.0))
}

// ---------------------------------------------------------------------------
// The supervisor
// ---------------------------------------------------------------------------

/// Silences the default panic printout for [`CancelUnwind`] payloads —
/// cooperative cancellations are supervision, not crashes — chaining every
/// other panic to the previously-installed hook.
fn install_quiet_cancel_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CancelUnwind>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Telemetry drained from one cell's tracer after its run (or after the
/// final failed attempt — a crashed cell's trace shows the slots leading
/// up to the crash).
pub struct CellTrace {
    /// Buffered events, oldest first. The ring may have shed the earliest
    /// (see [`CellTrace::dropped`]).
    pub events: Vec<TraceEvent>,
    /// Raw per-stage latency histograms for campaign-level merging.
    pub hists: [LatencyHist; STAGE_COUNT],
    /// Events the ring discarded for capacity.
    pub dropped: u64,
}

impl CellTrace {
    fn drain_from(tracer: &Tracer) -> Self {
        Self {
            events: tracer.drain_events(),
            hists: tracer.histograms(),
            dropped: tracer.dropped(),
        }
    }
}

/// A fresh ring-buffered tracer per the campaign's telemetry spec
/// (disabled tracer when telemetry is unconfigured).
fn spec_tracer(spec: Option<&TelemetrySpec>) -> Option<Tracer> {
    spec.map(|s| Tracer::new(Box::new(RingBufferSink::new(s.ring_capacity)), s.decimation))
}

/// Live campaign counters, shared between the workers and the heartbeat
/// printer on the watchdog thread.
struct CampaignStats {
    /// Cells resolved (completed, failed, or shed) this campaign.
    done: AtomicUsize,
    /// Retry attempts consumed beyond each cell's first.
    retried: AtomicUsize,
    /// Cells shed under the campaign deadline.
    shed: AtomicUsize,
    /// Workers currently executing a cell.
    busy: AtomicUsize,
    /// Cells this campaign has to resolve (journal-resumed cells excluded).
    total: usize,
}

impl CampaignStats {
    /// One heartbeat line: progress, retry/shed counts, utilization, ETA.
    fn heartbeat(&self, elapsed: Duration, threads: usize) -> String {
        let done = self.done.load(Ordering::Relaxed);
        let eta = if done > 0 && done < self.total {
            let remaining = (self.total - done) as f64;
            let per_cell = elapsed.as_secs_f64() / done as f64;
            format!("{:.0}s", per_cell * remaining)
        } else if done >= self.total {
            "0s".to_string()
        } else {
            "?".to_string()
        };
        format!(
            "[campaign] {done}/{total} done · {retried} retried · {shed} shed · {busy}/{threads} busy · ETA {eta}",
            total = self.total,
            retried = self.retried.load(Ordering::Relaxed),
            shed = self.shed.load(Ordering::Relaxed),
            busy = self.busy.load(Ordering::Relaxed),
        )
    }
}

/// Executes one cell to a terminal outcome (retrying transient failures),
/// journaling nothing — the caller owns the journal. The returned trace is
/// `Some` exactly when the campaign configured telemetry, drained from the
/// terminal attempt (successful or not).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn execute_cell(
    job: &Job,
    cfg: &CampaignConfig,
    inflight: &Mutex<HashMap<usize, (Option<Instant>, CancelToken)>>,
    job_idx: usize,
    campaign_expired: &AtomicBool,
    stats: &CampaignStats,
) -> (
    u32,
    Result<(RunResult, u64), CampaignFailure>,
    Option<CellTrace>,
) {
    let budget = job.tick_budget.or(cfg.tick_budget);
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let token = match budget {
            Some(b) => CancelToken::with_tick_budget(b),
            None => CancelToken::new(),
        };
        // A fresh tracer per attempt: a retried attempt never inherits the
        // failed one's events or histograms.
        let tracer = spec_tracer(cfg.telemetry.as_ref());
        let deadline = cfg.run_deadline.map(|d| Instant::now() + d);
        if deadline.is_some() {
            inflight
                .lock()
                .unwrap()
                .insert(job_idx, (deadline, token.clone()));
        }
        let run_token = token.clone();
        let run_tracer = tracer.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(hook) = &cfg.pre_run_hook {
                hook(&job.key, attempts);
            }
            let setup = (job.builder)(&job.key)?;
            run_setup(setup, &job.key, run_token, run_tracer)
        }));
        inflight.lock().unwrap().remove(&job_idx);
        let trace = tracer.as_ref().map(CellTrace::drain_from);
        let failure = match outcome {
            Ok(Ok(result)) => {
                let digest = result.digest();
                return (attempts, Ok((result, digest)), trace);
            }
            Ok(Err(message)) => CampaignFailure {
                kind: FailureKind::Validation,
                message,
            },
            Err(payload) => {
                let kind = if is_cancel_unwind(payload.as_ref()) || token.is_cancelled() {
                    FailureKind::Timeout
                } else {
                    FailureKind::Panic
                };
                CampaignFailure {
                    kind,
                    message: panic_msg(payload),
                }
            }
        };
        if !failure.kind.retryable() || attempts >= cfg.max_attempts {
            return (attempts, Err(failure), trace);
        }
        if campaign_expired.load(Ordering::Acquire) {
            return (
                attempts,
                Err(CampaignFailure {
                    message: format!(
                        "campaign deadline expired during retry: {}",
                        failure.message
                    ),
                    ..failure
                }),
                trace,
            );
        }
        stats.retried.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(backoff_delay(cfg, &job.key, attempts));
    }
}

/// Builds the front-end stack for one cell and plays it. The zero-fault
/// path drives the bare simulator, preserving bit-identity with
/// [`crate::runner::run_many`].
fn run_setup(
    setup: JobSetup,
    key: &CellKey,
    token: CancelToken,
    tracer: Option<Tracer>,
) -> Result<RunResult, String> {
    let JobSetup {
        scenario: sc,
        mut strategy,
    } = setup;
    let mut sim = sc.simulator(key.seed);
    sim.set_cancel_token(token);
    if let Some(t) = tracer {
        // The run loop clones the simulator's tracer into the strategy
        // stack, so this one installation covers every layer.
        sim.set_tracer(t);
    }
    let result = match (sc.fault.is_inert(), sc.impairment.is_inert()) {
        (true, true) => sim.run_with_warmup(
            strategy.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        ),
        (false, true) => {
            let mut fe = FaultInjector::new(sim, sc.fault.clone()).map_err(|e| e.to_string())?;
            fe.run_with_warmup(
                strategy.as_mut(),
                sc.duration_s,
                sc.tick_period_s,
                sc.name,
                sc.warmup_s,
            )
        }
        (true, false) => {
            let mut fe =
                ImpairedFrontEnd::new(sim, sc.impairment.clone()).map_err(|e| e.to_string())?;
            fe.run_with_warmup(
                strategy.as_mut(),
                sc.duration_s,
                sc.tick_period_s,
                sc.name,
                sc.warmup_s,
            )
        }
        // Impairments sit nearest the hardware; faults wrap them so a
        // probe-loss window suppresses the impaired observation wholesale.
        (false, false) => {
            let impaired =
                ImpairedFrontEnd::new(sim, sc.impairment.clone()).map_err(|e| e.to_string())?;
            let mut fe =
                FaultInjector::new(impaired, sc.fault.clone()).map_err(|e| e.to_string())?;
            fe.run_with_warmup(
                strategy.as_mut(),
                sc.duration_s,
                sc.tick_period_s,
                sc.name,
                sc.warmup_s,
            )
        }
    };
    result.validate()?;
    Ok(result)
}

/// Replays one journaled cell single-threaded: rebuilds the cell from its
/// registry names, runs it under the recorded tick budget, and returns the
/// outcome the run reproduces — `Ok((result, digest))` for a completed run,
/// `Err(failure)` carrying the reproduced failure class otherwise.
pub fn replay_cell(entry: &JournalEntry) -> Result<(RunResult, u64), CampaignFailure> {
    replay_cell_inner(entry, None).0
}

/// [`replay_cell`] with a ring-buffered tracer installed: returns the
/// drained per-slot trace alongside the replayed outcome — for a recorded
/// failure, the trace covers the slots leading up to the reproduced crash.
/// With the `telemetry` feature off the trace comes back empty (the
/// instrumentation call sites do not exist).
pub fn replay_cell_traced(
    entry: &JournalEntry,
    spec: &TelemetrySpec,
) -> (Result<(RunResult, u64), CampaignFailure>, CellTrace) {
    let (outcome, trace) = replay_cell_inner(entry, Some(spec));
    (outcome, trace.expect("tracer was installed"))
}

fn replay_cell_inner(
    entry: &JournalEntry,
    spec: Option<&TelemetrySpec>,
) -> (Result<(RunResult, u64), CampaignFailure>, Option<CellTrace>) {
    install_quiet_cancel_hook();
    let key = entry.key();
    let token = match entry.tick_budget {
        Some(b) => CancelToken::with_tick_budget(b),
        None => CancelToken::new(),
    };
    let tracer = spec_tracer(spec);
    let run_tracer = tracer.clone();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let setup = registry_builder(&key)?;
        run_setup(setup, &key, token.clone(), run_tracer)
    }));
    let trace = tracer.as_ref().map(CellTrace::drain_from);
    let result = match outcome {
        Ok(Ok(result)) => {
            let digest = result.digest();
            Ok((result, digest))
        }
        Ok(Err(message)) => Err(CampaignFailure {
            kind: FailureKind::Validation,
            message,
        }),
        Err(payload) => {
            let kind = if is_cancel_unwind(payload.as_ref()) || token.is_cancelled() {
                FailureKind::Timeout
            } else {
                FailureKind::Panic
            };
            Err(CampaignFailure {
                kind,
                message: panic_msg(payload),
            })
        }
    };
    (result, trace)
}

/// Runs a campaign to completion (see the module docs for the guarantees).
///
/// Errors only on campaign-level problems — duplicate cell keys, an
/// unreadable journal; individual cell failures are reported per cell, not
/// as errors.
pub fn run_campaign(jobs: &[Job], cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    install_quiet_cancel_hook();
    let mut seen = std::collections::HashSet::new();
    for job in jobs {
        if !seen.insert(job.key.id()) {
            return Err(format!("duplicate cell key: {}", job.key));
        }
    }
    let journaled: HashMap<String, JournalEntry> = match &cfg.journal {
        Some(path) => load_journal(path)?
            .into_iter()
            .map(|e| (e.key().id(), e))
            .collect(),
        None => HashMap::new(),
    };
    let journal = cfg.journal.as_ref().map(|path| {
        let existing: Vec<JournalEntry> = {
            // Preserve on-disk order for the rewrite.
            let mut v: Vec<&JournalEntry> = journaled.values().collect();
            v.sort_by_key(|e| e.key().id());
            v.into_iter().cloned().collect()
        };
        Mutex::new(JournalFile::open(path, &existing))
    });

    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.threads
    };

    // Resolve resumed cells up front; queue the rest by (priority desc,
    // submission order).
    let mut slots: Vec<Option<CellOutcome>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    let mut runnable: Vec<usize> = Vec::new();
    for (i, job) in jobs.iter().enumerate() {
        if let Some(entry) = journaled.get(&job.key.id()) {
            slots[i] = Some(CellOutcome {
                key: job.key.clone(),
                priority: job.priority,
                attempts: 0,
                status: CellStatus::Resumed {
                    entry: entry.clone(),
                },
            });
        } else {
            runnable.push(i);
        }
    }
    runnable.sort_by(|&a, &b| jobs[b].priority.cmp(&jobs[a].priority).then(a.cmp(&b)));
    let stats = CampaignStats {
        done: AtomicUsize::new(0),
        retried: AtomicUsize::new(0),
        shed: AtomicUsize::new(0),
        busy: AtomicUsize::new(0),
        total: runnable.len(),
    };
    let queue: Mutex<VecDeque<usize>> = Mutex::new(runnable.into());
    let slots = Mutex::new(slots);
    let inflight: Mutex<HashMap<usize, (Option<Instant>, CancelToken)>> =
        Mutex::new(HashMap::new());
    let campaign_expired = AtomicBool::new(false);
    let watchdog_stop = AtomicBool::new(false);
    let start = Instant::now();
    let journal_err: Mutex<Option<String>> = Mutex::new(None);
    let spec = cfg.telemetry.as_ref();
    let trace_file: Option<Mutex<TraceFile>> = spec
        .and_then(|s| s.trace.as_deref())
        .map(|path| Mutex::new(TraceFile::create(path)));
    let chrome_wanted = spec.is_some_and(|s| s.chrome_trace.is_some());
    let chrome_cells: Mutex<Vec<(String, Vec<TraceEvent>)>> = Mutex::new(Vec::new());
    let merged: Mutex<[LatencyHist; STAGE_COUNT]> =
        Mutex::new(std::array::from_fn(|_| LatencyHist::new()));

    std::thread::scope(|s| {
        // The watchdog: cancels in-flight runs past their deadline, raises
        // the campaign-expired flag, and (when enabled) ticks the progress
        // heartbeat.
        let watchdog = s.spawn(|| {
            let mut last_beat = Instant::now();
            while !watchdog_stop.load(Ordering::Acquire) {
                let now = Instant::now();
                if let Some(cd) = cfg.campaign_deadline {
                    if now.duration_since(start) >= cd {
                        campaign_expired.store(true, Ordering::Release);
                    }
                }
                for (deadline, token) in inflight.lock().unwrap().values() {
                    if let Some(d) = deadline {
                        if now >= *d {
                            token.cancel();
                        }
                    }
                }
                if cfg.progress && now.duration_since(last_beat) >= Duration::from_millis(500) {
                    last_beat = now;
                    eprintln!("{}", stats.heartbeat(now.duration_since(start), threads));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| loop {
                    let idx = queue.lock().unwrap().pop_front();
                    let Some(idx) = idx else { break };
                    let job = &jobs[idx];
                    let outcome = if campaign_expired.load(Ordering::Acquire) {
                        stats.shed.fetch_add(1, Ordering::Relaxed);
                        CellOutcome {
                            key: job.key.clone(),
                            priority: job.priority,
                            attempts: 0,
                            status: CellStatus::Shed,
                        }
                    } else {
                        stats.busy.fetch_add(1, Ordering::Relaxed);
                        let (attempts, result, trace) =
                            execute_cell(job, cfg, &inflight, idx, &campaign_expired, &stats);
                        stats.busy.fetch_sub(1, Ordering::Relaxed);
                        if let Some(trace) = trace {
                            let mut hists = merged.lock().unwrap();
                            for (m, h) in hists.iter_mut().zip(trace.hists.iter()) {
                                m.merge(h);
                            }
                            drop(hists);
                            let cell_id = job.key.id();
                            if let Some(tf) = &trace_file {
                                let lines = trace.events.iter().map(|e| e.to_json(&cell_id));
                                if let Err(e) = tf.lock().unwrap().append_cell(lines) {
                                    journal_err.lock().unwrap().get_or_insert(e);
                                }
                            }
                            if chrome_wanted {
                                chrome_cells.lock().unwrap().push((cell_id, trace.events));
                            }
                        }
                        let (entry, status) = match result {
                            Ok((result, digest)) => (
                                JournalEntry {
                                    scenario: job.key.scenario.clone(),
                                    strategy: job.key.strategy.clone(),
                                    seed: job.key.seed,
                                    fault: job.key.fault_spec.clone(),
                                    status: "ok".to_string(),
                                    attempts,
                                    digest,
                                    tick_budget: job.tick_budget.or(cfg.tick_budget),
                                    reliability: result.reliability(),
                                    message: String::new(),
                                    features: compiled_features(),
                                    impairment: job.key.impairment_spec.clone(),
                                },
                                CellStatus::Completed {
                                    result: Box::new(result),
                                    digest,
                                },
                            ),
                            Err(failure) => (
                                JournalEntry {
                                    scenario: job.key.scenario.clone(),
                                    strategy: job.key.strategy.clone(),
                                    seed: job.key.seed,
                                    fault: job.key.fault_spec.clone(),
                                    status: failure.kind.as_str().to_string(),
                                    attempts,
                                    digest: 0,
                                    tick_budget: job.tick_budget.or(cfg.tick_budget),
                                    reliability: 0.0,
                                    message: failure.message.clone(),
                                    features: compiled_features(),
                                    impairment: job.key.impairment_spec.clone(),
                                },
                                CellStatus::Failed { failure },
                            ),
                        };
                        if let Some(j) = &journal {
                            if let Err(e) = j.lock().unwrap().append(&entry) {
                                journal_err.lock().unwrap().get_or_insert(e);
                            }
                        }
                        CellOutcome {
                            key: job.key.clone(),
                            priority: job.priority,
                            attempts,
                            status,
                        }
                    };
                    stats.done.fetch_add(1, Ordering::Relaxed);
                    slots.lock().unwrap()[idx] = Some(outcome);
                })
            })
            .collect();
        for w in workers {
            let _ = w.join();
        }
        watchdog_stop.store(true, Ordering::Release);
        let _ = watchdog.join();
    });
    if cfg.progress {
        eprintln!("{}", stats.heartbeat(start.elapsed(), threads));
    }

    if let Some(e) = journal_err.into_inner().unwrap() {
        return Err(e);
    }
    if let Some(path) = spec.and_then(|s| s.chrome_trace.as_deref()) {
        let mut cells = chrome_cells.into_inner().unwrap();
        // Completion order is thread-dependent; sort for a deterministic
        // file.
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        mmwave_telemetry::write_chrome_trace(path, &cells)?;
    }
    let outcomes: Vec<CellOutcome> = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("every cell resolved"))
        .collect();
    let hists = merged.into_inner().unwrap();
    // The campaign is the capture layer: the registry is populated here
    // unconditionally (no feature gate) from data the run already produced.
    if let Some(path) = &cfg.metrics {
        let mut reg = mmwave_telemetry::MetricsRegistry::new();
        let campaign = reg.resource("campaign");
        let (mut ok, mut resumed, mut failed) = (0u64, 0u64, 0u64);
        for o in &outcomes {
            let cell = reg.resource(&o.key.id());
            let attempts = reg.counter(cell, "attempts");
            reg.set_counter(attempts, u64::from(o.attempts));
            match &o.status {
                CellStatus::Completed { result, .. } => {
                    ok += 1;
                    let g = reg.gauge(cell, "reliability");
                    reg.set_gauge(g, result.reliability());
                }
                CellStatus::Resumed { entry } => {
                    resumed += 1;
                    let g = reg.gauge(cell, "reliability");
                    reg.set_gauge(g, entry.reliability);
                }
                CellStatus::Failed { .. } | CellStatus::Shed => failed += 1,
            }
        }
        for (counter, value) in [
            ("cells", outcomes.len() as u64),
            ("completed", ok),
            ("resumed", resumed),
            ("failed", failed),
        ] {
            let c = reg.counter(campaign, counter);
            reg.set_counter(c, value);
        }
        for (stage, hist) in mmwave_telemetry::Stage::ALL.iter().zip(hists.iter()) {
            let h = reg.histogram(campaign, stage.name());
            reg.merge_hist(h, hist);
        }
        write_lines_atomic(path, &reg.snapshot_jsonl())?;
    }
    Ok(CampaignReport { outcomes, hists })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_many;

    fn quick_jobs(n: usize, base_seed: u64) -> Vec<Job> {
        closure_jobs(
            n,
            base_seed,
            "mobile-blockage",
            "single-beam-reactive",
            scenario::mobile_blockage,
            || Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
        )
    }

    #[test]
    fn zero_fault_campaign_matches_run_many_bit_for_bit() {
        let cfg = CampaignConfig {
            threads: 1,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&quick_jobs(3, 400), &cfg).unwrap();
        let direct = run_many(3, 400, 1, scenario::mobile_blockage, || {
            Box::new(SingleBeamReactive::new(ReactiveConfig::default()))
        });
        let campaign_results = report.results();
        assert_eq!(campaign_results.len(), 3);
        for (c, d) in campaign_results.iter().zip(&direct) {
            assert_eq!(
                c.digest(),
                d.digest(),
                "supervised run must be bit-identical"
            );
        }
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let digests = |threads| {
            let cfg = CampaignConfig {
                threads,
                ..CampaignConfig::default()
            };
            let report = run_campaign(&quick_jobs(4, 900), &cfg).unwrap();
            report
                .outcomes
                .iter()
                .map(|o| match &o.status {
                    CellStatus::Completed { digest, .. } => *digest,
                    other => panic!("expected completion, got {}", status_name(other)),
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(digests(1), digests(4));
    }

    fn status_name(s: &CellStatus) -> &'static str {
        match s {
            CellStatus::Completed { .. } => "completed",
            CellStatus::Resumed { .. } => "resumed",
            CellStatus::Failed { .. } => "failed",
            CellStatus::Shed => "shed",
        }
    }

    #[test]
    fn panics_are_retried_then_terminal() {
        use std::sync::atomic::AtomicU32;
        let calls = Arc::new(AtomicU32::new(0));
        let calls2 = Arc::clone(&calls);
        let cfg = CampaignConfig {
            threads: 1,
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            pre_run_hook: Some(Arc::new(move |_key, _attempt| {
                calls2.fetch_add(1, Ordering::SeqCst);
                panic!("chaos: injected panic");
            })),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&quick_jobs(1, 1), &cfg).unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 3, "3 attempts consumed");
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1.kind, FailureKind::Panic);
        assert!(failures[0].1.message.contains("injected panic"));
        assert_eq!(report.outcomes[0].attempts, 3);
    }

    #[test]
    fn tick_budget_times_out_deterministically() {
        let cfg = CampaignConfig {
            threads: 1,
            max_attempts: 2,
            backoff_base: Duration::from_millis(1),
            tick_budget: Some(3),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&quick_jobs(1, 7), &cfg).unwrap();
        let failures = report.failures();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].1.kind, FailureKind::Timeout);
        assert_eq!(report.outcomes[0].attempts, 2, "timeouts are retried");
    }

    #[test]
    fn validation_failures_are_not_retried() {
        let mut jobs = quick_jobs(1, 11);
        jobs[0].builder = Arc::new(|_| Err("deliberately malformed cell".to_string()));
        let cfg = CampaignConfig {
            threads: 1,
            max_attempts: 5,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&jobs, &cfg).unwrap();
        assert_eq!(report.outcomes[0].attempts, 1, "no retry on validation");
        assert_eq!(report.failures()[0].1.kind, FailureKind::Validation);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let mut jobs = quick_jobs(2, 5);
        jobs[1].key = jobs[0].key.clone();
        match run_campaign(&jobs, &CampaignConfig::default()) {
            Err(e) => assert!(e.contains("duplicate")),
            Ok(_) => panic!("duplicate keys must be rejected"),
        }
    }

    #[test]
    fn backoff_is_deterministic_capped_and_grows() {
        let cfg = CampaignConfig {
            seed: 42,
            backoff_base: Duration::from_millis(100),
            backoff_factor: 2.0,
            backoff_max: Duration::from_millis(350),
            ..CampaignConfig::default()
        };
        let key = quick_jobs(1, 0).remove(0).key;
        let d1 = backoff_delay(&cfg, &key, 1);
        assert_eq!(d1, backoff_delay(&cfg, &key, 1), "same inputs, same delay");
        assert!(d1 >= Duration::from_millis(50) && d1 <= Duration::from_millis(100));
        let d3 = backoff_delay(&cfg, &key, 3);
        assert!(
            d3 <= Duration::from_millis(350),
            "cap respected, got {d3:?}"
        );
        // A different campaign seed jitters differently.
        let other = CampaignConfig { seed: 43, ..cfg };
        assert_ne!(d1, backoff_delay(&other, &key, 1));
    }

    #[test]
    fn journal_entry_round_trips() {
        let e = JournalEntry {
            scenario: "mobile-blockage".into(),
            strategy: "mm, \"quoted\"\nstrategy".into(),
            seed: 17,
            fault: "seed=9;loss=0.5@0..1".into(),
            status: "ok".into(),
            attempts: 2,
            digest: 0xdead_beef_0123_4567,
            tick_budget: Some(400),
            reliability: 0.97125,
            message: String::new(),
            features: "perf-counters,telemetry".into(),
            impairment: "seed=3;pn=200000@0.001".into(),
        };
        let parsed = JournalEntry::parse(&e.to_json()).expect("parses");
        assert_eq!(parsed, e);
        let none_budget = JournalEntry {
            tick_budget: None,
            status: "panic".into(),
            message: "boom: {\"weird\"}".into(),
            ..e
        };
        let parsed = JournalEntry::parse(&none_budget.to_json()).expect("parses");
        assert_eq!(parsed, none_budget);
        assert!(JournalEntry::parse("{\"scenario\":\"torn-li").is_none());
        assert!(JournalEntry::parse("").is_none());
    }

    #[test]
    fn campaign_telemetry_is_inert_for_digests() {
        // A telemetry-capturing campaign must produce bit-identical
        // results to a bare one: the tracer observes, never perturbs.
        let bare = run_campaign(
            &quick_jobs(2, 1300),
            &CampaignConfig {
                threads: 1,
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        let traced = run_campaign(
            &quick_jobs(2, 1300),
            &CampaignConfig {
                threads: 1,
                telemetry: Some(TelemetrySpec::default()),
                ..CampaignConfig::default()
            },
        )
        .unwrap();
        for (b, t) in bare.outcomes.iter().zip(&traced.outcomes) {
            let (
                CellStatus::Completed { digest: db, .. },
                CellStatus::Completed { digest: dt, .. },
            ) = (&b.status, &t.status)
            else {
                panic!("both campaigns must complete");
            };
            assert_eq!(db, dt, "telemetry must not perturb the run");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn campaign_trace_is_valid_jsonl_with_monotone_slots() {
        use std::collections::HashMap;
        let dir =
            std::env::temp_dir().join(format!("mmwave-campaign-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace = dir.join("trace.jsonl");
        let chrome = dir.join("trace.chrome.json");
        let cfg = CampaignConfig {
            threads: 2,
            telemetry: Some(TelemetrySpec {
                trace: Some(trace.clone()),
                chrome_trace: Some(chrome.clone()),
                decimation: 4,
                ring_capacity: 1 << 16,
            }),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&quick_jobs(2, 2100), &cfg).unwrap();

        // Merged histograms actually accumulated compute spans.
        assert!(report.hists.iter().any(|h| !h.is_empty()));
        assert!(report.latency().tick().count > 0);

        // Every trace line is strict JSON; slot timestamps are monotone
        // per cell.
        let text = std::fs::read_to_string(&trace).unwrap();
        let mut last_slot_t: HashMap<String, f64> = HashMap::new();
        let mut slot_lines = 0usize;
        for line in text.lines() {
            if let Err(e) = mmwave_telemetry::validate_json_line(line) {
                panic!("invalid trace line ({e}): {line}");
            }
            let cell = mmwave_telemetry::field_str(line, "cell").unwrap();
            if mmwave_telemetry::field_str(line, "kind").as_deref() == Some("slot") {
                let t = mmwave_telemetry::field_f64(line, "t_s").unwrap();
                if let Some(prev) = last_slot_t.get(&cell) {
                    assert!(t >= *prev, "slot time regressed in cell {cell}");
                }
                last_slot_t.insert(cell, t);
                slot_lines += 1;
            }
        }
        assert!(slot_lines > 0, "trace must contain slot records");
        assert_eq!(last_slot_t.len(), 2, "both cells traced");

        // The Chrome trace landed and is one JSON object.
        let chrome_text = std::fs::read_to_string(&chrome).unwrap();
        assert!(chrome_text.starts_with('{') && chrome_text.trim_end().ends_with('}'));
        assert!(chrome_text.contains("\"traceEvents\""));

        // Journal-side: compiled_features names the telemetry build.
        assert!(compiled_features().contains("telemetry"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn replay_traced_reproduces_digest_and_trace() {
        let entry = JournalEntry {
            scenario: "mobile-blockage".into(),
            strategy: "single-beam-reactive".into(),
            seed: 5,
            fault: "none".into(),
            status: "ok".into(),
            attempts: 1,
            digest: 0,
            tick_budget: None,
            reliability: 0.0,
            message: String::new(),
            features: compiled_features(),
            impairment: "none".into(),
        };
        let (first, trace) = replay_cell_traced(&entry, &TelemetrySpec::default());
        let (r1, d1) = first.expect("replay completes");
        assert!(!trace.events.is_empty(), "replay must capture events");
        assert!(trace.hists.iter().any(|h| !h.is_empty()));
        // Traced replay matches the untraced one bit for bit.
        let (_r2, d2) = replay_cell(&entry).expect("replay completes");
        assert_eq!(d1, d2, "tracing must not perturb the replay");
        assert!(r1.latency.tick().count > 0, "RunResult carries percentiles");
    }

    #[test]
    fn registry_names_all_build() {
        for name in SCENARIO_NAMES {
            assert!(build_scenario(name, 3).is_some(), "{name} must build");
        }
        for name in STRATEGY_NAMES {
            assert!(build_strategy(name).is_some(), "{name} must build");
        }
        assert!(build_scenario("nope", 0).is_none());
        assert!(build_strategy("nope").is_none());
        let job = Job::from_registry(
            "mobile-blockage",
            "single-beam-reactive",
            5,
            FaultSchedule::none(),
            0,
        )
        .unwrap();
        assert_eq!(job.key.fault_spec, "none");
        assert!(Job::from_registry("nope", "mmreliable", 0, FaultSchedule::none(), 0).is_err());
        let mut bad = FaultSchedule::none();
        bad.stale_prob = 7.0;
        assert!(
            Job::from_registry("mobile-blockage", "mmreliable", 0, bad, 0).is_err(),
            "invalid fault schedule must fail job construction"
        );
    }

    #[test]
    fn cell_key_id_keeps_four_segments_for_clean_front_ends() {
        // The historical four-segment id is pinned by old journals and the
        // CI soak cell; only an actual impairment spec may extend it.
        let clean = Job::from_registry(
            "mobile-blockage",
            "mmreliable",
            7000,
            FaultSchedule::none(),
            0,
        )
        .unwrap();
        assert_eq!(clean.key.id(), "mobile-blockage//mmreliable//7000//none");
        let impaired = Job::from_registry(
            "mobile-blockage",
            "mmreliable",
            7000,
            FaultSchedule::none(),
            0,
        )
        .unwrap()
        .with_impairments(&ImpairmentConfig::mild(3))
        .unwrap();
        let id = impaired.key.id();
        assert_eq!(id.split("//").count(), 5, "impaired id gains one segment");
        assert!(id.starts_with("mobile-blockage//mmreliable//7000//none//seed=3;"));
        let mut bad = ImpairmentConfig::mild(3);
        bad.adc = Some(crate::impairments::AdcCfg {
            bits: 0,
            headroom_db: 9.0,
        });
        assert!(
            Job::from_registry(
                "mobile-blockage",
                "mmreliable",
                7000,
                FaultSchedule::none(),
                0
            )
            .unwrap()
            .with_impairments(&bad)
            .is_err(),
            "invalid impairment config must fail job construction"
        );
    }

    fn entry_with_impairment(impairment: &str) -> JournalEntry {
        JournalEntry {
            scenario: "mobile-blockage".into(),
            strategy: "single-beam-reactive".into(),
            seed: 5,
            fault: "none".into(),
            status: "ok".into(),
            attempts: 1,
            digest: 0,
            tick_budget: None,
            reliability: 0.0,
            message: String::new(),
            features: compiled_features(),
            impairment: impairment.into(),
        }
    }

    #[test]
    fn impaired_cell_replays_deterministically_and_differs_from_clean() {
        let clean = entry_with_impairment("none");
        let spec = ImpairmentConfig::mild(11).spec_string();
        let impaired = entry_with_impairment(&spec);
        let (_, d_clean) = replay_cell(&clean).expect("clean replay completes");
        let (_, d1) = replay_cell(&impaired).expect("impaired replay completes");
        let (_, d2) = replay_cell(&impaired).expect("impaired replay repeats");
        assert_eq!(d1, d2, "impaired replay must be deterministic");
        assert_ne!(d1, d_clean, "enabled impairments must perturb the digest");
        // A legacy entry (field absent from the journal line) replays as a
        // clean front end.
        let legacy = entry_with_impairment("");
        assert_eq!(legacy.key().impairment_spec, "none");
        let (_, d_legacy) = replay_cell(&legacy).expect("legacy replay completes");
        assert_eq!(d_legacy, d_clean);
    }

    #[test]
    fn impairment_note_flags_legacy_and_malformed_entries() {
        let legacy = entry_with_impairment("");
        assert!(
            impairment_note(&legacy)
                .expect("legacy entry warns")
                .contains("predates"),
            "missing field reads as a pre-impairment journal"
        );
        assert!(impairment_note(&entry_with_impairment("none")).is_none());
        let spec = ImpairmentConfig::severe(1).spec_string();
        assert!(impairment_note(&entry_with_impairment(&spec)).is_none());
        assert!(impairment_note(&entry_with_impairment("pn=bogus"))
            .expect("malformed spec warns")
            .contains("does not parse"),);
    }
}
