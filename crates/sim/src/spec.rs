//! Declarative scenario specs: a small, deterministic, serializable
//! description of an experiment that round-trips to and from a one-line
//! plain-text form and constructs today's [`Scenario`] values exactly.
//!
//! A [`ScenarioSpec`] names a world ([`WorldSpec`]), a strategy, a seed, a
//! [`FaultSchedule`], an [`ImpairmentConfig`], and — optionally — a fleet
//! mix ([`FleetMixSpec`]: fleet size plus per-UE fault/impairment groups).
//! Its text form *is* the campaign cell id
//! (`world//strategy//seed//fault[//impairment]`), so a spec string pastes
//! straight into `replay --cell` and a spec-built cell is replayable from
//! its journal line like any registry cell.
//!
//! Worlds come in two classes:
//!
//! - **Curated** — the scenario library's builders
//!   ([`crate::scenario`]). A curated world whose parameters match the
//!   campaign registry serializes to the bare registry name
//!   (`static-walker`, `gnb-rotation`, …), so curated specs are
//!   bit-identical to — indeed indistinguishable from — today's registry
//!   cells. Parameter variants the registry does not name serialize to a
//!   versioned form (`spec:v1:gnb-rotation@8`).
//! - **Custom** — a [`CustomWorld`]: room, trajectory, blocker list,
//!   duration, bounce depth — the scenario fuzzer's generation surface
//!   (`spec:v1:custom;room=conference;traj=trans@0.9,7,180,3,0;…`).
//!
//! The grammar never uses `/` (it nests inside `//`-separated cell ids)
//! and is versioned: a binary that meets a `spec:v2:…` world it cannot
//! parse warns and skips ([`spec_note`]) instead of erroring, mirroring
//! the fleet/impairment forward-compatibility pattern.

use crate::campaign::{CellKey, JournalEntry, STRATEGY_NAMES};
use crate::faults::FaultSchedule;
use crate::fleet::{fleet_scenario_id, FleetConfig};
use crate::impairments::ImpairmentConfig;
use crate::scenario::{self, Scenario, ScenarioError, DEFAULT_WARMUP_S};
use mmwave_channel::blockage::{BlockageEvent, BlockageProcess};
use mmwave_channel::channel::UeReceiver;
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::linkbudget::LinkBudget;
use mmwave_channel::mobility::{Pose, Trajectory};
use mmwave_dsp::units::{FC_28GHZ, FC_60GHZ};
use mmwave_phy::chanest::ChannelSounder;

/// The registry parameter [`crate::campaign::build_scenario`] passes to
/// [`scenario::gnb_rotation`] — a [`WorldSpec::GnbRotation`] at this rate
/// canonicalizes to the bare registry name.
pub const REGISTRY_GNB_RATE_DEG_S: f64 = 24.0;

/// The registry parameter for [`scenario::outdoor`]'s link distance.
pub const REGISTRY_OUTDOOR_DIST_M: f64 = 30.0;

// ---------------------------------------------------------------------------
// Worlds
// ---------------------------------------------------------------------------

/// Which scene a [`CustomWorld`] plays in. The room fixes the sounder
/// (indoor/outdoor front end) and, for the 60 GHz appendix scene, the link
/// budget — exactly as the curated builders do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoomKind {
    /// The paper's conference room at 28 GHz.
    Conference,
    /// The outdoor street canyon at 28 GHz (USRP front end).
    Outdoor,
    /// Appendix B's reflector scene at 28 GHz.
    Appendix28,
    /// Appendix B's reflector scene at 60 GHz (400 MHz budget).
    Appendix60,
}

impl RoomKind {
    fn id(self) -> &'static str {
        match self {
            RoomKind::Conference => "conference",
            RoomKind::Outdoor => "outdoor",
            RoomKind::Appendix28 => "appendix-28",
            RoomKind::Appendix60 => "appendix-60",
        }
    }

    fn parse(s: &str) -> Result<Self, ScenarioError> {
        Ok(match s {
            "conference" => RoomKind::Conference,
            "outdoor" => RoomKind::Outdoor,
            "appendix-28" => RoomKind::Appendix28,
            "appendix-60" => RoomKind::Appendix60,
            other => return Err(ScenarioError::spec(format!("unknown room {other:?}"))),
        })
    }
}

/// A custom world's UE trajectory.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TrajSpec {
    /// A static UE at the given pose.
    Static {
        /// UE x, metres.
        x: f64,
        /// UE y, metres.
        y: f64,
        /// UE facing, degrees.
        facing_deg: f64,
    },
    /// Constant-velocity translation from the given pose.
    Translation {
        /// Start x, metres.
        x: f64,
        /// Start y, metres.
        y: f64,
        /// UE facing, degrees.
        facing_deg: f64,
        /// x velocity, m/s.
        vx: f64,
        /// y velocity, m/s.
        vy: f64,
    },
    /// A static UE (standard indoor pose) under gNB gantry rotation.
    Rotation {
        /// gNB rotation rate, degrees per second.
        rate_deg_s: f64,
    },
}

/// One blocker event in a custom world, in the paper's nominal trapezoid
/// shape (10 dB / 10 OFDM symbol ramps).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockerSpec {
    /// Index of the blocked path in the scene's reference path list.
    pub path: u32,
    /// Event start, seconds (authored clock: 0 = end of warm-up).
    pub start_s: f64,
    /// Fade depth at full blockage, dB.
    pub depth_db: f64,
    /// Fully-blocked hold, seconds.
    pub hold_s: f64,
}

/// A fully-declarative world the scenario library does not curate: the
/// scenario fuzzer's generation surface. Built scenes use the same rooms,
/// sounders, tick cadence, and warm-up as the curated builders.
#[derive(Clone, Debug, PartialEq)]
pub struct CustomWorld {
    /// The scene (and with it the sounder/budget).
    pub room: RoomKind,
    /// Image-source bounce depth (1 = single bounces, 2 adds wall pairs).
    pub max_bounces: u8,
    /// Measured duration, seconds.
    pub duration_s: f64,
    /// UE trajectory.
    pub traj: TrajSpec,
    /// Blocker events (multi-blocker crowds are lists).
    pub blockers: Vec<BlockerSpec>,
}

impl CustomWorld {
    /// Validates the world before any geometry is built.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !self.duration_s.is_finite() || self.duration_s <= 0.0 || self.duration_s > 10.0 {
            return Err(ScenarioError::spec(format!(
                "custom duration {} outside (0, 10] s",
                self.duration_s
            )));
        }
        if !(1..=3).contains(&self.max_bounces) {
            return Err(ScenarioError::spec(format!(
                "custom bounce depth {} outside 1..=3",
                self.max_bounces
            )));
        }
        let finite = |v: f64| v.is_finite();
        let traj_ok = match self.traj {
            TrajSpec::Static { x, y, facing_deg } => [x, y, facing_deg].iter().all(|&v| finite(v)),
            TrajSpec::Translation {
                x,
                y,
                facing_deg,
                vx,
                vy,
            } => [x, y, facing_deg, vx, vy].iter().all(|&v| finite(v)),
            TrajSpec::Rotation { rate_deg_s } => finite(rate_deg_s),
        };
        if !traj_ok {
            return Err(ScenarioError::spec(
                "custom trajectory has a non-finite component".to_string(),
            ));
        }
        for b in &self.blockers {
            if b.path >= 16 {
                return Err(ScenarioError::spec(format!(
                    "blocker path index {} outside 0..16",
                    b.path
                )));
            }
            if !b.start_s.is_finite() || b.start_s < 0.0 {
                return Err(ScenarioError::spec(format!(
                    "blocker start {} must be finite and >= 0",
                    b.start_s
                )));
            }
            if !b.depth_db.is_finite() || !(0.0..=60.0).contains(&b.depth_db) {
                return Err(ScenarioError::spec(format!(
                    "blocker depth {} outside [0, 60] dB",
                    b.depth_db
                )));
            }
            if !b.hold_s.is_finite() || b.hold_s < 0.0 {
                return Err(ScenarioError::spec(format!(
                    "blocker hold {} must be finite and >= 0",
                    b.hold_s
                )));
            }
        }
        Ok(())
    }

    fn traj_id(&self) -> String {
        match self.traj {
            TrajSpec::Static { x, y, facing_deg } => format!("static@{x},{y},{facing_deg}"),
            TrajSpec::Translation {
                x,
                y,
                facing_deg,
                vx,
                vy,
            } => format!("trans@{x},{y},{facing_deg},{vx},{vy}"),
            TrajSpec::Rotation { rate_deg_s } => format!("rot@{rate_deg_s}"),
        }
    }

    fn id(&self) -> String {
        let mut parts = vec![
            format!("room={}", self.room.id()),
            format!("bounce={}", self.max_bounces),
            format!("dur={}", self.duration_s),
            format!("traj={}", self.traj_id()),
        ];
        if !self.blockers.is_empty() {
            let blk: Vec<String> = self
                .blockers
                .iter()
                .map(|b| format!("p{}~{}~{}~{}", b.path, b.start_s, b.depth_db, b.hold_s))
                .collect();
            parts.push(format!("blk={}", blk.join("+")));
        }
        format!("custom;{}", parts.join(";"))
    }

    fn parse(body: &str) -> Result<Self, ScenarioError> {
        fn f64_field(s: &str, what: &str) -> Result<f64, ScenarioError> {
            s.parse::<f64>()
                .map_err(|e| ScenarioError::spec(format!("bad {what} {s:?}: {e}")))
        }
        let mut room = None;
        let mut bounce = None;
        let mut dur = None;
        let mut traj = None;
        let mut blockers = Vec::new();
        for part in body.split(';') {
            if part.is_empty() {
                continue;
            }
            let (key, val) = part.split_once('=').ok_or_else(|| {
                ScenarioError::spec(format!("bad custom field {part:?} (want key=value)"))
            })?;
            match key {
                "room" => room = Some(RoomKind::parse(val)?),
                "bounce" => {
                    bounce = Some(
                        val.parse::<u8>()
                            .map_err(|e| ScenarioError::spec(format!("bad bounce {val:?}: {e}")))?,
                    )
                }
                "dur" => dur = Some(f64_field(val, "duration")?),
                "traj" => {
                    let (kind, args) = val.split_once('@').ok_or_else(|| {
                        ScenarioError::spec(format!("bad traj {val:?} (want kind@args)"))
                    })?;
                    let nums: Vec<f64> = args
                        .split(',')
                        .map(|a| f64_field(a, "traj component"))
                        .collect::<Result<_, _>>()?;
                    traj = Some(match (kind, nums.as_slice()) {
                        ("static", [x, y, f]) => TrajSpec::Static {
                            x: *x,
                            y: *y,
                            facing_deg: *f,
                        },
                        ("trans", [x, y, f, vx, vy]) => TrajSpec::Translation {
                            x: *x,
                            y: *y,
                            facing_deg: *f,
                            vx: *vx,
                            vy: *vy,
                        },
                        ("rot", [r]) => TrajSpec::Rotation { rate_deg_s: *r },
                        _ => {
                            return Err(ScenarioError::spec(format!(
                            "bad traj {val:?} (want static@x,y,f | trans@x,y,f,vx,vy | rot@rate)"
                        )))
                        }
                    });
                }
                "blk" => {
                    for ev in val.split('+') {
                        let body = ev.strip_prefix('p').ok_or_else(|| {
                            ScenarioError::spec(format!(
                                "bad blocker {ev:?} (want p<path>~start~depth~hold)"
                            ))
                        })?;
                        let fields: Vec<&str> = body.split('~').collect();
                        let [path, start, depth, hold] = fields.as_slice() else {
                            return Err(ScenarioError::spec(format!(
                                "bad blocker {ev:?} (want p<path>~start~depth~hold)"
                            )));
                        };
                        blockers.push(BlockerSpec {
                            path: path.parse::<u32>().map_err(|e| {
                                ScenarioError::spec(format!("bad blocker path {path:?}: {e}"))
                            })?,
                            start_s: f64_field(start, "blocker start")?,
                            depth_db: f64_field(depth, "blocker depth")?,
                            hold_s: f64_field(hold, "blocker hold")?,
                        });
                    }
                }
                other => {
                    return Err(ScenarioError::spec(format!(
                        "unknown custom field {other:?}"
                    )))
                }
            }
        }
        let w = CustomWorld {
            room: room.ok_or_else(|| ScenarioError::spec("custom world missing room"))?,
            max_bounces: bounce.unwrap_or(1),
            duration_s: dur.ok_or_else(|| ScenarioError::spec("custom world missing dur"))?,
            traj: traj.ok_or_else(|| ScenarioError::spec("custom world missing traj"))?,
            blockers,
        };
        w.validate()?;
        Ok(w)
    }

    /// Builds the [`Scenario`] — same tick cadence, warm-up, and receive
    /// model as every curated builder.
    pub fn build(&self) -> Result<Scenario, ScenarioError> {
        self.validate()?;
        let (mut scene, sounder) = match self.room {
            RoomKind::Conference => (
                Scene::conference_room(FC_28GHZ),
                ChannelSounder::paper_indoor(),
            ),
            RoomKind::Outdoor => (
                Scene::outdoor_street(FC_28GHZ),
                ChannelSounder::paper_outdoor(),
            ),
            RoomKind::Appendix28 => (Scene::appendix_b(FC_28GHZ), ChannelSounder::paper_indoor()),
            RoomKind::Appendix60 => {
                let mut s = ChannelSounder::paper_indoor();
                s.budget = LinkBudget::sixty_ghz_400mhz();
                (Scene::appendix_b(FC_60GHZ), s)
            }
        };
        scene.max_bounces = self.max_bounces;
        let mut rotation = 0.0;
        let traj = match self.traj {
            TrajSpec::Static { x, y, facing_deg } => Trajectory::Static {
                pose: Pose {
                    pos: v2(x, y),
                    facing_deg,
                },
            },
            TrajSpec::Translation {
                x,
                y,
                facing_deg,
                vx,
                vy,
            } => Trajectory::Translation {
                start: Pose {
                    pos: v2(x, y),
                    facing_deg,
                },
                velocity: v2(vx, vy),
            },
            TrajSpec::Rotation { rate_deg_s } => {
                rotation = rate_deg_s;
                Trajectory::Static {
                    pose: Pose {
                        pos: v2(0.9, 7.0),
                        facing_deg: 180.0,
                    },
                }
            }
        };
        let events: Vec<BlockageEvent> = self
            .blockers
            .iter()
            .map(|b| BlockageEvent::nominal(b.path as usize, b.start_s, b.depth_db, b.hold_s))
            .collect();
        let mut dynamic = DynamicChannel::new(scene, traj, BlockageProcess::from_events(events));
        if rotation != 0.0 {
            dynamic = dynamic.with_gnb_rotation(rotation);
        }
        Ok(Scenario {
            name: "custom",
            dynamic,
            sounder,
            rx: UeReceiver::Omni,
            duration_s: self.duration_s,
            tick_period_s: 10e-3,
            warmup_s: DEFAULT_WARMUP_S,
            fault: FaultSchedule::none(),
            impairment: ImpairmentConfig::none(),
        })
    }
}

/// A serializable world description. Curated variants delegate to the
/// scenario library's builders — their built [`Scenario`]s are the same
/// values, bit for bit — and [`WorldSpec::Custom`] builds a declarative
/// scene.
#[derive(Clone, Debug, PartialEq)]
pub enum WorldSpec {
    /// [`scenario::static_walker`].
    StaticWalker,
    /// [`scenario::mobile_blockage`] (seeded).
    MobileBlockage,
    /// [`scenario::translation_1s`].
    Translation1s,
    /// [`scenario::gnb_rotation`] at the given rate.
    GnbRotation {
        /// Gantry rate, degrees per second.
        rate_deg_s: f64,
    },
    /// [`scenario::rotation_blockage`] (seeded).
    RotationBlockage,
    /// [`scenario::mixed_mobility_blockage`] (seeded; alternates by seed
    /// parity).
    MixedMobility,
    /// [`scenario::outdoor`] at the given distance (seeded blocker).
    Outdoor {
        /// Link distance, metres.
        dist_m: f64,
    },
    /// [`scenario::natural_motion`] (seeded).
    NaturalMotion,
    /// [`scenario::appendix_b`].
    AppendixB {
        /// 60 GHz flavor (28 GHz otherwise).
        sixty_ghz: bool,
    },
    /// A fully-declarative world.
    Custom(CustomWorld),
}

impl WorldSpec {
    /// The campaign registry name this world is identical to, when its
    /// parameters match the registry's — the bare-name serialization that
    /// makes curated specs indistinguishable from registry cells.
    pub fn registry_name(&self) -> Option<&'static str> {
        Some(match self {
            WorldSpec::StaticWalker => "static-walker",
            WorldSpec::MobileBlockage => "mobile-blockage",
            WorldSpec::Translation1s => "translation-1s",
            WorldSpec::GnbRotation { rate_deg_s } if *rate_deg_s == REGISTRY_GNB_RATE_DEG_S => {
                "gnb-rotation"
            }
            WorldSpec::RotationBlockage => "rotation-blockage",
            WorldSpec::Outdoor { dist_m } if *dist_m == REGISTRY_OUTDOOR_DIST_M => "outdoor",
            WorldSpec::NaturalMotion => "natural-motion",
            WorldSpec::AppendixB { sixty_ghz: false } => "appendix-b-28ghz",
            WorldSpec::AppendixB { sixty_ghz: true } => "appendix-b-60ghz",
            _ => return None,
        })
    }

    /// Canonical one-line world id: the bare registry name when the world
    /// is registry-exact, otherwise a versioned `spec:v1:…` form. Never
    /// contains `/`, so it nests inside `//`-separated cell ids.
    pub fn id(&self) -> String {
        if let Some(name) = self.registry_name() {
            return name.to_string();
        }
        match self {
            WorldSpec::GnbRotation { rate_deg_s } => format!("spec:v1:gnb-rotation@{rate_deg_s}"),
            WorldSpec::Outdoor { dist_m } => format!("spec:v1:outdoor@{dist_m}"),
            WorldSpec::MixedMobility => "spec:v1:mixed-mobility".to_string(),
            WorldSpec::Custom(w) => format!("spec:v1:{}", w.id()),
            // Registry-exact variants returned above.
            _ => unreachable!("registry-exact world must serialize to its registry name"),
        }
    }

    /// Parses a world id — a bare registry name or a `spec:v1:…` form.
    /// Registry parameter variants parse back to the same variant the
    /// registry name denotes (`spec:v1:gnb-rotation@24` ≡ `gnb-rotation`),
    /// so `parse(id(w)).id() == id(w)` always holds.
    pub fn parse(s: &str) -> Result<Self, ScenarioError> {
        match s {
            "static-walker" => return Ok(WorldSpec::StaticWalker),
            "mobile-blockage" => return Ok(WorldSpec::MobileBlockage),
            "translation-1s" => return Ok(WorldSpec::Translation1s),
            "gnb-rotation" => {
                return Ok(WorldSpec::GnbRotation {
                    rate_deg_s: REGISTRY_GNB_RATE_DEG_S,
                })
            }
            "rotation-blockage" => return Ok(WorldSpec::RotationBlockage),
            "outdoor" => {
                return Ok(WorldSpec::Outdoor {
                    dist_m: REGISTRY_OUTDOOR_DIST_M,
                })
            }
            "natural-motion" => return Ok(WorldSpec::NaturalMotion),
            "appendix-b-28ghz" => return Ok(WorldSpec::AppendixB { sixty_ghz: false }),
            "appendix-b-60ghz" => return Ok(WorldSpec::AppendixB { sixty_ghz: true }),
            _ => {}
        }
        let rest = s.strip_prefix("spec:").ok_or_else(|| {
            ScenarioError::spec(format!(
                "unknown world {s:?} (not a registry name or spec form)"
            ))
        })?;
        let body = rest.strip_prefix("v1:").ok_or_else(|| {
            ScenarioError::spec(format!(
                "unsupported spec version in {s:?} (this binary understands spec:v1)"
            ))
        })?;
        fn f64_field(s: &str, what: &str) -> Result<f64, ScenarioError> {
            s.parse::<f64>()
                .map_err(|e| ScenarioError::spec(format!("bad {what} {s:?}: {e}")))
        }
        if body == "mixed-mobility" {
            return Ok(WorldSpec::MixedMobility);
        }
        if let Some(arg) = body.strip_prefix("gnb-rotation@") {
            return Ok(WorldSpec::GnbRotation {
                rate_deg_s: f64_field(arg, "rotation rate")?,
            });
        }
        if let Some(arg) = body.strip_prefix("outdoor@") {
            return Ok(WorldSpec::Outdoor {
                dist_m: f64_field(arg, "outdoor distance")?,
            });
        }
        if let Some(fields) =
            body.strip_prefix("custom;")
                .or(if body == "custom" { Some("") } else { None })
        {
            return Ok(WorldSpec::Custom(CustomWorld::parse(fields)?));
        }
        Err(ScenarioError::spec(format!("unknown spec world {body:?}")))
    }

    /// Builds the [`Scenario`] this world denotes, exactly as
    /// [`crate::campaign::build_scenario`] would for a registry cell:
    /// curated variants call the library constructor with the cell seed,
    /// custom variants build declaratively.
    pub fn build(&self, seed: u64) -> Result<Scenario, ScenarioError> {
        Ok(match self {
            WorldSpec::StaticWalker => scenario::static_walker(),
            WorldSpec::MobileBlockage => scenario::mobile_blockage(seed),
            WorldSpec::Translation1s => scenario::translation_1s(),
            WorldSpec::GnbRotation { rate_deg_s } => scenario::gnb_rotation(*rate_deg_s),
            WorldSpec::RotationBlockage => scenario::rotation_blockage(seed),
            WorldSpec::MixedMobility => scenario::mixed_mobility_blockage(seed),
            WorldSpec::Outdoor { dist_m } => scenario::outdoor(*dist_m, seed),
            WorldSpec::NaturalMotion => scenario::natural_motion(seed),
            WorldSpec::AppendixB { sixty_ghz } => scenario::appendix_b(*sixty_ghz),
            WorldSpec::Custom(w) => w.build()?,
        })
    }
}

/// The eleven curated worlds: every scenario-library constructor (the nine
/// registry forms, the mixed-mobility alternator the registry does not
/// name, and one registry parameter variant — the paper's 8°/s tracking
/// sweep). The round-trip suite proves each produces a bit-identical run
/// fingerprint through the spec path and the direct constructor path.
pub fn curated_worlds() -> Vec<WorldSpec> {
    vec![
        WorldSpec::StaticWalker,
        WorldSpec::MobileBlockage,
        WorldSpec::Translation1s,
        WorldSpec::GnbRotation {
            rate_deg_s: REGISTRY_GNB_RATE_DEG_S,
        },
        WorldSpec::RotationBlockage,
        WorldSpec::MixedMobility,
        WorldSpec::Outdoor {
            dist_m: REGISTRY_OUTDOOR_DIST_M,
        },
        WorldSpec::NaturalMotion,
        WorldSpec::AppendixB { sixty_ghz: false },
        WorldSpec::AppendixB { sixty_ghz: true },
        WorldSpec::GnbRotation { rate_deg_s: 8.0 },
    ]
}

// ---------------------------------------------------------------------------
// Fleet mixes
// ---------------------------------------------------------------------------

/// One fleet mix group: the fault schedule and impairment configuration a
/// slice of the fleet runs under. UE `k` gets group `k % groups.len()`,
/// with its fault/impairment seeds offset by `k` so every member draws its
/// own realization ([`crate::fleet::ue_mix`]).
#[derive(Clone, Debug, PartialEq)]
pub struct MixGroup {
    /// Group fault schedule (seed is the group base seed).
    pub fault: FaultSchedule,
    /// Group impairment configuration (seed is the group base seed).
    pub impairment: ImpairmentConfig,
}

/// A per-UE fleet mix: fleet size plus heterogeneous fault/impairment
/// groups assigned round-robin across members. An empty group list is the
/// clean fleet.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetMixSpec {
    /// Fleet size.
    pub n_ues: u32,
    /// Mix groups; empty = every UE clean.
    pub groups: Vec<MixGroup>,
}

/// Serializes mix groups into the journal's `(fault, impairment)` field
/// pair: `mix:`-prefixed `|`-joined per-group specs, index-aligned across
/// the two fields. An empty group list canonicalizes to `("none", "none")`
/// — the exact fields today's clean fleets write.
pub fn mix_fields(groups: &[MixGroup]) -> (String, String) {
    if groups.is_empty() {
        return ("none".to_string(), "none".to_string());
    }
    let faults: Vec<String> = groups.iter().map(|g| g.fault.spec_string()).collect();
    let imps: Vec<String> = groups.iter().map(|g| g.impairment.spec_string()).collect();
    (
        format!("mix:{}", faults.join("|")),
        format!("mix:{}", imps.join("|")),
    )
}

/// Parses a journal `(fault, impairment)` field pair back into mix groups
/// — the inverse of [`mix_fields`]. Plain `"none"`/empty fields (clean
/// fleets, and every journal written before mixes existed) parse to the
/// empty group list.
pub fn parse_mix_fields(
    fault_field: &str,
    imp_field: &str,
) -> Result<Vec<MixGroup>, ScenarioError> {
    let f_plain = fault_field.is_empty() || fault_field == "none";
    let i_plain = imp_field.is_empty() || imp_field == "none";
    if f_plain && i_plain {
        return Ok(Vec::new());
    }
    let (Some(f_body), Some(i_body)) = (
        fault_field.strip_prefix("mix:"),
        imp_field.strip_prefix("mix:"),
    ) else {
        return Err(ScenarioError::spec(format!(
            "fleet mix fields must both be mix:-prefixed (or both none), got fault {fault_field:?} / impairment {imp_field:?}"
        )));
    };
    let faults: Vec<&str> = f_body.split('|').collect();
    let imps: Vec<&str> = i_body.split('|').collect();
    if faults.len() != imps.len() {
        return Err(ScenarioError::spec(format!(
            "fleet mix group counts differ: {} fault group(s) vs {} impairment group(s)",
            faults.len(),
            imps.len()
        )));
    }
    faults
        .iter()
        .zip(&imps)
        .map(|(f, i)| {
            Ok(MixGroup {
                fault: FaultSchedule::parse_spec(f).map_err(ScenarioError::fault)?,
                impairment: ImpairmentConfig::parse_spec(i).map_err(ScenarioError::impairment)?,
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// The full spec
// ---------------------------------------------------------------------------

/// A complete, serializable experiment description: world × strategy ×
/// seed × fault × impairment, with an optional per-UE fleet mix. The text
/// form is the campaign cell id, so specs, journal lines, and `replay
/// --cell` arguments are one vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// The world.
    pub world: WorldSpec,
    /// Strategy registry name.
    pub strategy: String,
    /// Simulator seed (fleet seed for fleet specs).
    pub seed: u64,
    /// Fault schedule (ignored for fleet specs — the mix carries per-UE
    /// schedules instead).
    pub fault: FaultSchedule,
    /// Impairment configuration (ignored for fleet specs).
    pub impairment: ImpairmentConfig,
    /// `Some` for a fleet spec: run `n_ues` members of this world with the
    /// mix's per-UE fault/impairment groups.
    pub fleet: Option<FleetMixSpec>,
}

impl ScenarioSpec {
    /// A clean single-link spec of the given world.
    pub fn single(world: WorldSpec, strategy: &str, seed: u64) -> Self {
        Self {
            world,
            strategy: strategy.to_string(),
            seed,
            fault: FaultSchedule::none(),
            impairment: ImpairmentConfig::none(),
            fleet: None,
        }
    }

    /// Validates the spec end to end: the world builds, the strategy is
    /// known, schedules validate, and fleet specs use a registry base
    /// world (the `fleet:{base}:{n}` journal form cannot carry a world id
    /// that itself contains `:`).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        self.world.build(self.seed)?;
        if !STRATEGY_NAMES.contains(&self.strategy.as_str()) {
            return Err(ScenarioError::spec(format!(
                "unknown strategy {:?} (known: {STRATEGY_NAMES:?})",
                self.strategy
            )));
        }
        self.fault.validate().map_err(ScenarioError::fault)?;
        self.impairment
            .validate()
            .map_err(ScenarioError::impairment)?;
        if let Some(fleet) = &self.fleet {
            if fleet.n_ues == 0 {
                return Err(ScenarioError::spec("fleet spec needs at least one UE"));
            }
            if self.world.registry_name().is_none() {
                return Err(ScenarioError::spec(format!(
                    "fleet specs need a registry base world, got {:?}",
                    self.world.id()
                )));
            }
            for g in &fleet.groups {
                g.fault.validate().map_err(ScenarioError::fault)?;
                g.impairment.validate().map_err(ScenarioError::impairment)?;
            }
        }
        Ok(())
    }

    /// The campaign cell key of a single-link spec, or the aggregate fleet
    /// cell key of a fleet spec.
    pub fn cell_key(&self) -> CellKey {
        match &self.fleet {
            None => CellKey {
                scenario: self.world.id(),
                strategy: self.strategy.clone(),
                seed: self.seed,
                fault_spec: self.fault.spec_string(),
                impairment_spec: self.impairment.spec_string(),
            },
            Some(fleet) => {
                let (fault_spec, impairment_spec) = mix_fields(&fleet.groups);
                CellKey {
                    scenario: fleet_scenario_id(
                        self.world.registry_name().unwrap_or("invalid"),
                        fleet.n_ues,
                    ),
                    strategy: self.strategy.clone(),
                    seed: self.seed,
                    fault_spec,
                    impairment_spec,
                }
            }
        }
    }

    /// Canonical one-line form: exactly [`CellKey::id`], so a spec string
    /// pastes into `replay --cell` unchanged.
    pub fn spec_string(&self) -> String {
        self.cell_key().id()
    }

    /// Parses a [`ScenarioSpec::spec_string`] (a cell id:
    /// `world//strategy//seed//fault[//impairment]`; fleet specs use the
    /// `fleet:{base}:{n}` scenario form with `mix:` schedule fields).
    pub fn parse_spec(s: &str) -> Result<Self, ScenarioError> {
        let parts: Vec<&str> = s.split("//").collect();
        let [scenario, strategy, seed, fault, rest @ ..] = parts.as_slice() else {
            return Err(ScenarioError::spec(format!(
                "bad spec {s:?} (want world//strategy//seed//fault[//impairment])"
            )));
        };
        let impairment = match rest {
            [] => "none",
            [imp] => imp,
            _ => {
                return Err(ScenarioError::spec(format!(
                    "bad spec {s:?}: too many // segments"
                )))
            }
        };
        let seed: u64 = seed
            .parse()
            .map_err(|e| ScenarioError::spec(format!("bad seed {seed:?}: {e}")))?;
        let spec = if let Some(fleet_ref) = crate::fleet::parse_fleet_scenario(scenario) {
            let crate::fleet::FleetScenarioRef::Aggregate { base, n_ues } = fleet_ref else {
                return Err(ScenarioError::spec(format!(
                    "per-UE fleet form {scenario:?} is a journal member line, not a spec"
                )));
            };
            ScenarioSpec {
                world: WorldSpec::parse(&base)?,
                strategy: (*strategy).to_string(),
                seed,
                fault: FaultSchedule::none(),
                impairment: ImpairmentConfig::none(),
                fleet: Some(FleetMixSpec {
                    n_ues,
                    groups: parse_mix_fields(fault, impairment)?,
                }),
            }
        } else {
            ScenarioSpec {
                world: WorldSpec::parse(scenario)?,
                strategy: (*strategy).to_string(),
                seed,
                fault: FaultSchedule::parse_spec(fault).map_err(ScenarioError::fault)?,
                impairment: ImpairmentConfig::parse_spec(impairment)
                    .map_err(ScenarioError::impairment)?,
                fleet: None,
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Builds the single-link [`Scenario`] (world + fault + impairment).
    /// Errors on fleet specs — those build a [`FleetConfig`] instead.
    pub fn to_scenario(&self) -> Result<Scenario, ScenarioError> {
        if self.fleet.is_some() {
            return Err(ScenarioError::spec(
                "fleet spec cannot build a single-link scenario; use fleet_config()",
            ));
        }
        self.world
            .build(self.seed)?
            .with_faults(self.fault.clone())?
            .with_impairments(self.impairment.clone())
    }

    /// Builds the [`FleetConfig`] of a fleet spec (no journal attached).
    /// Errors on single-link specs.
    pub fn fleet_config(&self) -> Result<FleetConfig, ScenarioError> {
        let fleet = self.fleet.as_ref().ok_or_else(|| {
            ScenarioError::spec("single-link spec has no fleet; use to_scenario()")
        })?;
        self.validate()?;
        let base = self
            .world
            .registry_name()
            .expect("validate() checked registry base");
        let mut cfg = FleetConfig::new(base, &self.strategy, fleet.n_ues, self.seed);
        cfg.mix = fleet.groups.clone();
        Ok(cfg)
    }

    /// A journal-entry template for this spec: the line the campaign (or
    /// the fuzzer's counterexample writer) records for a completed run.
    /// `digest`/`reliability` come from the run; `message` is free-form
    /// annotation space (the fuzzer stamps the failing oracle here).
    pub fn journal_entry(&self, digest: u64, reliability: f64, message: &str) -> JournalEntry {
        let key = self.cell_key();
        JournalEntry {
            scenario: key.scenario,
            strategy: key.strategy,
            seed: key.seed,
            fault: key.fault_spec,
            status: "ok".to_string(),
            attempts: 1,
            digest,
            tick_budget: None,
            reliability,
            message: message.to_string(),
            features: crate::campaign::compiled_features(),
            impairment: key.impairment_spec,
        }
    }
}

/// Compares a journal entry's scenario field against this binary's spec
/// vocabulary and returns a human-readable caution when the entry uses a
/// spec form this binary cannot parse (a future `spec:v2:` grammar, a torn
/// field) — the spec counterpart of [`crate::campaign::impairment_note`]
/// and [`crate::fleet::fleet_note`]. Replay tooling warns with this note
/// and skips the line; it never hard-errors on spec forms it predates.
/// `None` means a non-spec scenario or a fully-understood spec form.
pub fn spec_note(entry: &JournalEntry) -> Option<String> {
    if !entry.scenario.starts_with("spec:") {
        return None;
    }
    match WorldSpec::parse(&entry.scenario) {
        Ok(_) => None,
        Err(e) => Some(format!(
            "journal entry scenario {:?} uses a spec form this binary cannot parse ({}); \
             replay cannot reconstruct the cell",
            entry.scenario,
            e.reason()
        )),
    }
}

/// The coarse family of a spec-form scenario id, for once-per-file warning
/// dedup: the id up to the first field separator (`spec:v2:custom` for
/// `spec:v2:custom;room=…`). Non-spec scenarios dedup under their full
/// name (they warn through other notes, if at all).
pub fn spec_form_family(scenario: &str) -> &str {
    match scenario.find([';', '@']) {
        Some(i) => &scenario[..i],
        None => scenario,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::SCENARIO_NAMES;

    #[test]
    fn registry_worlds_serialize_to_bare_names() {
        for name in SCENARIO_NAMES {
            let w = WorldSpec::parse(name).expect("registry name parses");
            assert_eq!(w.id(), *name, "registry world must round-trip to its name");
            assert!(w.registry_name() == Some(*name));
        }
    }

    #[test]
    fn parameter_variants_use_versioned_forms() {
        let w = WorldSpec::GnbRotation { rate_deg_s: 8.0 };
        assert_eq!(w.id(), "spec:v1:gnb-rotation@8");
        assert_eq!(WorldSpec::parse(&w.id()).unwrap(), w);
        let w = WorldSpec::Outdoor { dist_m: 62.5 };
        assert_eq!(w.id(), "spec:v1:outdoor@62.5");
        assert_eq!(WorldSpec::parse(&w.id()).unwrap(), w);
        // A spec form spelling registry parameters canonicalizes back to
        // the bare name.
        let w = WorldSpec::parse("spec:v1:gnb-rotation@24").unwrap();
        assert_eq!(w.id(), "gnb-rotation");
    }

    #[test]
    fn custom_world_round_trips() {
        let w = WorldSpec::Custom(CustomWorld {
            room: RoomKind::Conference,
            max_bounces: 2,
            duration_s: 0.6,
            traj: TrajSpec::Translation {
                x: 0.9,
                y: 7.0,
                facing_deg: 180.0,
                vx: 3.5,
                vy: -0.25,
            },
            blockers: vec![
                BlockerSpec {
                    path: 0,
                    start_s: 0.2,
                    depth_db: 25.0,
                    hold_s: 0.1,
                },
                BlockerSpec {
                    path: 2,
                    start_s: 0.3,
                    depth_db: 18.5,
                    hold_s: 0.15,
                },
            ],
        });
        let id = w.id();
        assert!(id.starts_with("spec:v1:custom;"), "{id}");
        assert!(!id.contains('/'), "world ids must not contain '/': {id}");
        assert_eq!(WorldSpec::parse(&id).unwrap(), w);
    }

    #[test]
    fn unknown_versions_and_garbage_are_typed_spec_errors() {
        for bad in [
            "spec:v2:custom;room=conference",
            "spec:v1:no-such-world",
            "spec:v1:custom;room=atrium;dur=1;traj=rot@5",
            "not-a-world",
        ] {
            match WorldSpec::parse(bad) {
                Err(ScenarioError::InvalidSpec(_)) => {}
                other => panic!("{bad:?} must be InvalidSpec, got {other:?}"),
            }
        }
    }

    #[test]
    fn spec_string_is_a_cell_id_and_round_trips() {
        let mut fault = FaultSchedule::none();
        fault.seed = 9;
        fault.stale_prob = 0.25;
        let spec = ScenarioSpec {
            world: WorldSpec::GnbRotation { rate_deg_s: 8.0 },
            strategy: "mmreliable".to_string(),
            seed: 77,
            fault,
            impairment: ImpairmentConfig::none(),
            fleet: None,
        };
        let s = spec.spec_string();
        assert_eq!(
            s,
            "spec:v1:gnb-rotation@8//mmreliable//77//seed=9;stale=0.25"
        );
        assert_eq!(ScenarioSpec::parse_spec(&s).unwrap(), spec);
    }

    #[test]
    fn fleet_spec_round_trips_with_mix() {
        let mut g0_fault = FaultSchedule::none();
        g0_fault.seed = 3;
        g0_fault.stale_prob = 0.1;
        let spec = ScenarioSpec {
            world: WorldSpec::StaticWalker,
            strategy: "single-beam-reactive".to_string(),
            seed: 42,
            fault: FaultSchedule::none(),
            impairment: ImpairmentConfig::none(),
            fleet: Some(FleetMixSpec {
                n_ues: 4,
                groups: vec![
                    MixGroup {
                        fault: g0_fault,
                        impairment: ImpairmentConfig::none(),
                    },
                    MixGroup {
                        fault: FaultSchedule::none(),
                        impairment: ImpairmentConfig::mild(5),
                    },
                ],
            }),
        };
        let s = spec.spec_string();
        assert!(s.starts_with("fleet:static-walker:4//"), "{s}");
        assert_eq!(ScenarioSpec::parse_spec(&s).unwrap(), spec);
        // Clean fleets canonicalize to the exact fields today's fleets
        // journal.
        let clean = ScenarioSpec {
            fleet: Some(FleetMixSpec {
                n_ues: 2,
                groups: Vec::new(),
            }),
            ..spec
        };
        assert_eq!(
            clean.spec_string(),
            "fleet:static-walker:2//single-beam-reactive//42//none"
        );
        assert_eq!(
            ScenarioSpec::parse_spec(&clean.spec_string()).unwrap(),
            clean
        );
    }

    #[test]
    fn mix_fields_reject_mismatched_group_counts() {
        assert!(parse_mix_fields("mix:none|none", "mix:none").is_err());
        assert!(parse_mix_fields("mix:none", "none").is_err());
        assert!(parse_mix_fields("none", "none").unwrap().is_empty());
        assert!(parse_mix_fields("", "").unwrap().is_empty());
    }

    #[test]
    fn fleet_specs_need_registry_base_worlds() {
        let spec = ScenarioSpec {
            world: WorldSpec::GnbRotation { rate_deg_s: 8.0 },
            strategy: "mmreliable".to_string(),
            seed: 1,
            fault: FaultSchedule::none(),
            impairment: ImpairmentConfig::none(),
            fleet: Some(FleetMixSpec {
                n_ues: 2,
                groups: Vec::new(),
            }),
        };
        assert!(matches!(
            spec.validate(),
            Err(ScenarioError::InvalidSpec(_))
        ));
    }

    #[test]
    fn curated_corpus_is_eleven_and_all_build() {
        let worlds = curated_worlds();
        assert_eq!(worlds.len(), 11);
        for w in &worlds {
            let sc = w.build(3).expect("curated world builds");
            assert!(sc.duration_s > 0.0);
            // Every curated id parses back to the same world.
            assert_eq!(&WorldSpec::parse(&w.id()).unwrap(), w);
        }
    }

    #[test]
    fn custom_build_matches_curated_geometry() {
        // A custom world spelling the translation-1s parameters produces
        // the same channel (name differs; geometry and blockage agree).
        let custom = CustomWorld {
            room: RoomKind::Conference,
            max_bounces: 1,
            duration_s: 1.0,
            traj: TrajSpec::Translation {
                x: 0.9,
                y: 7.0,
                facing_deg: 180.0,
                vx: 1.5,
                vy: 0.0,
            },
            blockers: Vec::new(),
        }
        .build()
        .unwrap();
        let curated = scenario::translation_1s();
        assert_eq!(
            custom.dynamic.reference_paths().len(),
            curated.dynamic.reference_paths().len()
        );
        assert_eq!(custom.duration_s, curated.duration_s);
    }

    #[test]
    fn spec_note_warns_once_vocabulary() {
        let mk = |scenario: &str| JournalEntry {
            scenario: scenario.to_string(),
            strategy: "mmreliable".to_string(),
            seed: 1,
            fault: "none".to_string(),
            status: "ok".to_string(),
            attempts: 1,
            digest: 0,
            tick_budget: None,
            reliability: 1.0,
            message: String::new(),
            features: String::new(),
            impairment: "none".to_string(),
        };
        assert!(spec_note(&mk("static-walker")).is_none());
        assert!(spec_note(&mk("spec:v1:mixed-mobility")).is_none());
        assert!(spec_note(&mk("spec:v2:custom;room=tardis")).is_some());
        assert!(spec_note(&mk("spec:v1:garbage")).is_some());
        assert_eq!(
            spec_form_family("spec:v2:custom;room=tardis"),
            "spec:v2:custom"
        );
        assert_eq!(
            spec_form_family("spec:v1:gnb-rotation@8"),
            "spec:v1:gnb-rotation"
        );
        assert_eq!(spec_form_family("static-walker"), "static-walker");
    }
}
