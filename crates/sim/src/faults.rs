//! Fault injection over any [`LinkFrontEnd`].
//!
//! [`FaultInjector`] wraps a front end and corrupts its observable
//! behaviour according to a seeded [`FaultSchedule`]: probes get lost,
//! observations go stale, SNR estimates glitch, array elements fail or
//! drift in gain, and the whole front end can go dark for windows of time.
//! The wrapped front end never knows — the controller above sees exactly
//! the failure modes a real mmWave radio exhibits, which is what the
//! lifecycle state machine's bounded-retry recovery is built to survive.
//!
//! Two invariants make the wrapper usable in regression tests:
//!
//! - **Zero-fault transparency** — with [`FaultSchedule::none`] the wrapper
//!   is bit-identical to the bare front end: no fault RNG is consulted and
//!   every probe passes through untouched, so seeded runs reproduce
//!   exactly.
//! - **Separate fault randomness** — fault decisions draw from their own
//!   [`Rng64`] stream (seeded by [`FaultSchedule::seed`]), never from the
//!   channel/noise RNG, so enabling a fault category does not perturb the
//!   underlying channel realization.
//!
//! Every injected fault is recorded as a typed [`FaultEvent`]; the run
//! loop drains them into the per-run [`crate::metrics::RunResult`] event
//! log next to the controller's lifecycle transitions.

use crate::metrics::RunResult;
use crate::scenario::ScenarioError;
use crate::simulator::{run_front_end, LinkSimulator, SimFrontEnd};
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::pow_from_db;
use mmwave_phy::chanest::ProbeObservation;

/// A time window during which probes are lost with some probability.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbeLossWindow {
    /// Window start, seconds (front-end clock).
    pub start_s: f64,
    /// Window end, seconds.
    pub end_s: f64,
    /// Per-probe loss probability inside the window, in `[0, 1]`.
    pub loss_prob: f64,
}

impl ProbeLossWindow {
    /// True when `t_s` falls inside the window.
    pub fn contains(&self, t_s: f64) -> bool {
        t_s >= self.start_s && t_s < self.end_s
    }
}

/// Random multiplicative SNR error applied to probe observations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnrGlitch {
    /// Per-probe glitch probability, in `[0, 1]`.
    pub prob: f64,
    /// Maximum glitch magnitude, dB. Each glitch draws an offset uniformly
    /// in `[-mag_db, +mag_db]`.
    pub mag_db: f64,
}

/// What the fault layer does to the radio, and when. The default schedule
/// injects nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultSchedule {
    /// Seed for the dedicated fault RNG (independent of the channel RNG).
    pub seed: u64,
    /// Windows of probabilistic probe loss (erasure: the controller sees a
    /// noise-floor observation, the airtime is still spent).
    pub probe_loss: Vec<ProbeLossWindow>,
    /// Per-probe probability of returning the *previous* observation
    /// instead of the fresh one (stale CSI). `0` disables.
    pub stale_prob: f64,
    /// Random per-probe SNR glitches. `None` disables.
    pub snr_glitch: Option<SnrGlitch>,
    /// Array elements whose phase shifter / PA has failed: their weight is
    /// forced to zero in every radiated beam (probing *and* data).
    pub failed_elements: Vec<usize>,
    /// Peak per-element gain drift, dB. Each element oscillates with its
    /// own random phase over [`FaultSchedule::gain_drift_period_s`].
    /// `0` disables.
    pub gain_drift_db: f64,
    /// Gain-drift oscillation period, seconds.
    pub gain_drift_period_s: f64,
    /// Absolute `(start_s, end_s)` windows during which the front end is
    /// unavailable: every probe comes back as an erasure.
    pub unavailable: Vec<(f64, f64)>,
}

impl FaultSchedule {
    /// The inert schedule: injects nothing, draws no randomness.
    pub fn none() -> Self {
        Self {
            gain_drift_period_s: 1.0,
            ..Self::default()
        }
    }

    /// True when the schedule can never alter behaviour.
    pub fn is_inert(&self) -> bool {
        self.probe_loss.is_empty()
            && self.stale_prob == 0.0
            && self.snr_glitch.is_none()
            && self.failed_elements.is_empty()
            && self.gain_drift_db == 0.0
            && self.unavailable.is_empty()
    }

    /// Validates probabilities and windows.
    pub fn validate(&self) -> Result<(), String> {
        for w in &self.probe_loss {
            if !(0.0..=1.0).contains(&w.loss_prob) {
                return Err(format!("loss_prob {} outside [0,1]", w.loss_prob));
            }
            if !w.end_s.is_finite() || !w.start_s.is_finite() || w.end_s <= w.start_s {
                return Err(format!(
                    "probe-loss window [{}, {}) is empty",
                    w.start_s, w.end_s
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.stale_prob) {
            return Err(format!("stale_prob {} outside [0,1]", self.stale_prob));
        }
        if let Some(g) = &self.snr_glitch {
            if !(0.0..=1.0).contains(&g.prob) {
                return Err(format!("glitch prob {} outside [0,1]", g.prob));
            }
            if g.mag_db < 0.0 {
                return Err(format!("glitch magnitude {} negative", g.mag_db));
            }
        }
        if self.gain_drift_db < 0.0 {
            return Err(format!("gain_drift_db {} negative", self.gain_drift_db));
        }
        if self.gain_drift_db > 0.0
            && (!self.gain_drift_period_s.is_finite() || self.gain_drift_period_s <= 0.0)
        {
            return Err("gain drift requires a positive period".into());
        }
        for (a, b) in &self.unavailable {
            if !b.is_finite() || !a.is_finite() || b <= a {
                return Err(format!("unavailable window [{a}, {b}) is empty"));
            }
        }
        Ok(())
    }

    /// Canonical one-line textual form of the schedule — the `fault` column
    /// of the campaign journal, parseable back with
    /// [`FaultSchedule::parse_spec`] so a recorded failure replays under
    /// the exact schedule that produced it. Inert schedules (regardless of
    /// their seed, which is never consulted) canonicalize to `"none"`.
    ///
    /// Format: `;`-separated `key=value` fields in fixed order, e.g.
    /// `seed=9;loss=0.5@0..1;stale=0.1;glitch=0.2@6;fail=0+9;drift=2@0.5;dark=1..2`.
    pub fn spec_string(&self) -> String {
        if self.is_inert() {
            return "none".into();
        }
        let mut parts = vec![format!("seed={}", self.seed)];
        for w in &self.probe_loss {
            parts.push(format!("loss={}@{}..{}", w.loss_prob, w.start_s, w.end_s));
        }
        if self.stale_prob > 0.0 {
            parts.push(format!("stale={}", self.stale_prob));
        }
        if let Some(g) = &self.snr_glitch {
            parts.push(format!("glitch={}@{}", g.prob, g.mag_db));
        }
        if !self.failed_elements.is_empty() {
            let idx: Vec<String> = self.failed_elements.iter().map(|i| i.to_string()).collect();
            parts.push(format!("fail={}", idx.join("+")));
        }
        if self.gain_drift_db > 0.0 {
            parts.push(format!(
                "drift={}@{}",
                self.gain_drift_db, self.gain_drift_period_s
            ));
        }
        for (a, b) in &self.unavailable {
            parts.push(format!("dark={a}..{b}"));
        }
        parts.join(";")
    }

    /// Parses a [`FaultSchedule::spec_string`] back into a validated
    /// schedule. Accepts `"none"` (or an empty string) for the inert
    /// schedule.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        fn f64_field(s: &str, what: &str) -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|e| format!("bad {what} {s:?}: {e}"))
        }
        fn window(s: &str, what: &str) -> Result<(f64, f64), String> {
            let (a, b) = s
                .split_once("..")
                .ok_or_else(|| format!("bad {what} window {s:?} (want a..b)"))?;
            Ok((f64_field(a, what)?, f64_field(b, what)?))
        }
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(Self::none());
        }
        let mut out = Self::none();
        for part in spec.split(';') {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault field {part:?} (want key=value)"))?;
            match key {
                "seed" => {
                    out.seed = val
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed {val:?}: {e}"))?;
                }
                "loss" => {
                    let (p, w) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad loss {val:?} (want p@a..b)"))?;
                    let (start_s, end_s) = window(w, "loss")?;
                    out.probe_loss.push(ProbeLossWindow {
                        start_s,
                        end_s,
                        loss_prob: f64_field(p, "loss_prob")?,
                    });
                }
                "stale" => out.stale_prob = f64_field(val, "stale_prob")?,
                "glitch" => {
                    let (p, m) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad glitch {val:?} (want p@mag)"))?;
                    out.snr_glitch = Some(SnrGlitch {
                        prob: f64_field(p, "glitch prob")?,
                        mag_db: f64_field(m, "glitch mag")?,
                    });
                }
                "fail" => {
                    out.failed_elements = val
                        .split('+')
                        .map(|i| {
                            i.parse::<usize>()
                                .map_err(|e| format!("bad element index {i:?}: {e}"))
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "drift" => {
                    let (db, per) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad drift {val:?} (want db@period)"))?;
                    out.gain_drift_db = f64_field(db, "drift magnitude")?;
                    out.gain_drift_period_s = f64_field(per, "drift period")?;
                }
                "dark" => out.unavailable.push(window(val, "dark")?),
                _ => return Err(format!("unknown fault field {key:?}")),
            }
        }
        out.validate()?;
        Ok(out)
    }
}

/// One injected fault, typed and timestamped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// When the fault hit, seconds (front-end clock).
    pub t_s: f64,
    /// What happened.
    pub kind: FaultKind,
}

/// The kinds of fault the injector can produce.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// A probe was erased; the controller saw only the noise floor.
    ProbeLost,
    /// A probe returned the previous observation instead of a fresh one.
    StaleObservation,
    /// A probe's CSI was scaled by `offset_db`.
    SnrGlitch {
        /// Applied SNR offset, dB.
        offset_db: f64,
    },
    /// The front end was inside an unavailability window.
    FrontEndUnavailable,
    /// Element `index` radiates nothing for the whole run (logged once, at
    /// the first probe).
    ElementFailed {
        /// Failed element index.
        index: usize,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::ProbeLost => write!(f, "probe-lost"),
            FaultKind::StaleObservation => write!(f, "stale-observation"),
            FaultKind::SnrGlitch { offset_db } => {
                write!(f, "snr-glitch({offset_db:+.1}dB)")
            }
            FaultKind::FrontEndUnavailable => write!(f, "front-end-unavailable"),
            FaultKind::ElementFailed { index } => write!(f, "element-failed({index})"),
        }
    }
}

/// A [`LinkFrontEnd`] decorator that injects the faults of a
/// [`FaultSchedule`] between the radio and the beam-management layer.
pub struct FaultInjector<F> {
    inner: F,
    schedule: FaultSchedule,
    rng: Rng64,
    last_obs: Option<ProbeObservation>,
    drift_phase: Vec<f64>,
    events: Vec<FaultEvent>,
    static_faults_logged: bool,
}

impl<F: LinkFrontEnd> FaultInjector<F> {
    /// Wraps `inner` under `schedule`, failing fast on an invalid schedule
    /// — a mis-specified campaign cell surfaces here as a `Validation`
    /// failure instead of corrupting a sweep halfway through. The typed
    /// [`ScenarioError`] lets the scenario fuzzer tell this reject apart
    /// from a real run failure.
    pub fn new(inner: F, schedule: FaultSchedule) -> Result<Self, ScenarioError> {
        schedule.validate().map_err(ScenarioError::fault)?;
        let mut rng = Rng64::seed(schedule.seed ^ 0xFA17_FA17_FA17_FA17);
        let n = inner.geometry().num_elements();
        let drift_phase = if schedule.gain_drift_db > 0.0 {
            (0..n)
                .map(|_| rng.uniform_in(0.0, std::f64::consts::TAU))
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self {
            inner,
            schedule,
            rng,
            last_obs: None,
            drift_phase,
            events: Vec::new(),
            static_faults_logged: false,
        })
    }

    /// The wrapped front end.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The wrapped front end, mutably.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }

    /// The active schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// Faults injected so far (drained by the run loop; also drainable
    /// directly in unit tests).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Takes and clears the recorded fault events.
    pub fn take_events(&mut self) -> Vec<FaultEvent> {
        std::mem::take(&mut self.events)
    }

    /// The weights actually radiated under the element faults: failed
    /// elements are zeroed (their power is simply not transmitted — no
    /// re-normalization), drifting elements get their time-varying gain.
    /// Applies to probing *and* data-plane transmissions.
    pub fn faulted_weights(&self, w: &BeamWeights) -> BeamWeights {
        let mut out = w.clone();
        self.fault_weights_in_place(&mut out);
        out
    }

    /// In-place core of [`FaultInjector::faulted_weights`]: applies gain
    /// drift and element failures directly to `w`, allocating nothing.
    /// With no element faults configured this is a no-op.
    pub fn fault_weights_in_place(&self, w: &mut BeamWeights) {
        if self.schedule.failed_elements.is_empty() && self.schedule.gain_drift_db == 0.0 {
            return;
        }
        let v = w.as_mut_slice();
        if self.schedule.gain_drift_db > 0.0 {
            let t = self.inner.now_s();
            let omega = std::f64::consts::TAU / self.schedule.gain_drift_period_s;
            for (i, x) in v.iter_mut().enumerate() {
                let phase = self.drift_phase.get(i).copied().unwrap_or(0.0);
                let g_db = self.schedule.gain_drift_db * (omega * t + phase).sin();
                *x = x.scale(pow_from_db(g_db).sqrt());
            }
        }
        for &i in &self.schedule.failed_elements {
            if i < v.len() {
                // xtask-allow(hot-path-panic): guarded by the bounds check on the line above
                v[i] = Complex64::ZERO;
            }
        }
    }

    fn log_static_faults(&mut self, t_s: f64) {
        if self.static_faults_logged {
            return;
        }
        self.static_faults_logged = true;
        for &i in &self.schedule.failed_elements {
            self.events.push(FaultEvent {
                t_s,
                kind: FaultKind::ElementFailed { index: i },
            });
        }
    }

    fn unavailable_at(&self, t_s: f64) -> bool {
        self.schedule
            .unavailable
            .iter()
            .any(|&(a, b)| t_s >= a && t_s < b)
    }

    /// Erasure: the controller sees only the noise floor, on the same comb.
    fn erase(obs: &ProbeObservation) -> ProbeObservation {
        ProbeObservation {
            csi: vec![Complex64::ZERO; obs.csi.len()],
            freqs_hz: obs.freqs_hz.clone(),
            noise_power_mw: obs.noise_power_mw,
        }
    }

    fn corrupt(&mut self, mut obs: ProbeObservation, t_s: f64) -> ProbeObservation {
        if self.unavailable_at(t_s) {
            self.events.push(FaultEvent {
                t_s,
                kind: FaultKind::FrontEndUnavailable,
            });
            return Self::erase(&obs);
        }
        if let Some(w) = self.schedule.probe_loss.iter().find(|w| w.contains(t_s)) {
            let p = w.loss_prob;
            if self.rng.chance(p) {
                self.events.push(FaultEvent {
                    t_s,
                    kind: FaultKind::ProbeLost,
                });
                return Self::erase(&obs);
            }
        }
        if self.schedule.stale_prob > 0.0 && self.rng.chance(self.schedule.stale_prob) {
            if let Some(prev) = &self.last_obs {
                self.events.push(FaultEvent {
                    t_s,
                    kind: FaultKind::StaleObservation,
                });
                return prev.clone();
            }
        }
        if let Some(g) = self.schedule.snr_glitch {
            if self.rng.chance(g.prob) {
                let offset_db = self.rng.uniform_in(-g.mag_db, g.mag_db);
                let k = pow_from_db(offset_db).sqrt();
                for x in &mut obs.csi {
                    *x = x.scale(k);
                }
                self.events.push(FaultEvent {
                    t_s,
                    kind: FaultKind::SnrGlitch { offset_db },
                });
            }
        }
        self.last_obs = Some(obs.clone());
        obs
    }
}

impl<F: LinkFrontEnd> LinkFrontEnd for FaultInjector<F> {
    fn geometry(&self) -> &ArrayGeometry {
        self.inner.geometry()
    }

    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation {
        let t_s = self.inner.now_s();
        self.log_static_faults(t_s);
        let radiated = self.faulted_weights(weights);
        let obs = self.inner.probe_kind(&radiated, kind);
        self.corrupt(obs, t_s)
    }

    fn wait(&mut self, dur_s: f64) {
        self.inner.wait(dur_s);
    }

    fn now_s(&self) -> f64 {
        self.inner.now_s()
    }

    fn cancel_requested(&self) -> bool {
        self.inner.cancel_requested()
    }

    fn probes_used(&self) -> usize {
        self.inner.probes_used()
    }
}

impl<F: SimFrontEnd> SimFrontEnd for FaultInjector<F> {
    fn sim(&self) -> &LinkSimulator {
        self.inner.sim()
    }

    fn sim_mut(&mut self) -> &mut LinkSimulator {
        self.inner.sim_mut()
    }

    fn apply_radiated_faults(&self, w: &mut BeamWeights) {
        // Element faults hit the data plane too; compose with any faults
        // the inner stack applies.
        self.fault_weights_in_place(w);
        self.inner.apply_radiated_faults(w);
    }

    fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        let mut evs = self.inner.drain_fault_events();
        evs.extend(self.take_events());
        evs
    }

    fn drain_impairment_events(&mut self) -> Vec<crate::impairments::ImpairmentEvent> {
        // The fault layer produces no impairment annotations of its own but
        // must not swallow an impaired stack's (the usual composition is
        // `FaultInjector<ImpairedFrontEnd<LinkSimulator>>`).
        self.inner.drain_impairment_events()
    }
}

impl<F: SimFrontEnd> FaultInjector<F> {
    /// Plays `strategy` through the faulted stack — the fault-layer
    /// counterpart of [`LinkSimulator::run`].
    pub fn run(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
    ) -> RunResult {
        run_front_end(
            self,
            strategy,
            duration_s,
            tick_period_s,
            scenario_name,
            0.0,
        )
    }

    /// Faulted counterpart of [`LinkSimulator::run_with_warmup`].
    pub fn run_with_warmup(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
        warmup_s: f64,
    ) -> RunResult {
        run_front_end(
            self,
            strategy,
            duration_s,
            tick_period_s,
            scenario_name,
            warmup_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frozen_fe(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    fn boresight(fe: &impl LinkFrontEnd) -> BeamWeights {
        mmwave_array::steering::single_beam(fe.geometry(), 0.0)
    }

    #[test]
    fn inert_schedule_is_bit_identical() {
        let mut plain = frozen_fe(7);
        let w = boresight(&plain);
        let direct: Vec<ProbeObservation> = (0..16).map(|_| plain.probe(&w)).collect();
        let mut wrapped = FaultInjector::new(frozen_fe(7), FaultSchedule::none()).unwrap();
        for d in &direct {
            let o = wrapped.probe(&w);
            assert_eq!(o.csi, d.csi, "zero-fault wrapper must be transparent");
        }
        assert!(wrapped.events().is_empty());
        assert!(FaultSchedule::none().is_inert());
    }

    #[test]
    fn probe_loss_erases_within_window() {
        let mut sched = FaultSchedule::none();
        sched.probe_loss = vec![ProbeLossWindow {
            start_s: 0.0,
            end_s: 1.0,
            loss_prob: 1.0,
        }];
        let mut fe = FaultInjector::new(frozen_fe(1), sched).unwrap();
        let w = boresight(&fe);
        let obs = fe.probe(&w);
        assert_eq!(obs.snr_db(), -60.0, "lost probe must read as noise floor");
        assert!(matches!(fe.events()[0].kind, FaultKind::ProbeLost));
        // Airtime was still spent.
        assert_eq!(fe.probes_used(), 1);
    }

    #[test]
    fn stale_returns_previous_observation() {
        let mut sched = FaultSchedule::none();
        sched.stale_prob = 1.0;
        let mut fe = FaultInjector::new(frozen_fe(2), sched).unwrap();
        let w = boresight(&fe);
        let first = fe.probe(&w); // nothing cached yet: passes through
        let second = fe.probe(&w);
        assert_eq!(first.csi, second.csi, "second probe must replay the first");
        assert!(fe
            .events()
            .iter()
            .any(|e| e.kind == FaultKind::StaleObservation));
    }

    #[test]
    fn glitch_scales_snr_and_logs_offset() {
        let mut sched = FaultSchedule::none();
        sched.snr_glitch = Some(SnrGlitch {
            prob: 1.0,
            mag_db: 6.0,
        });
        let mut fe = FaultInjector::new(frozen_fe(3), sched).unwrap();
        let mut clean = frozen_fe(3);
        let w = boresight(&fe);
        let glitched = fe.probe(&w);
        let baseline = clean.probe(&w);
        let logged = match fe.events()[0].kind {
            FaultKind::SnrGlitch { offset_db } => offset_db,
            k => panic!("expected glitch event, got {k:?}"),
        };
        assert!(logged.abs() <= 6.0);
        let delta = glitched.snr_db() - baseline.snr_db();
        // High-SNR link: the noise de-bias shifts the dB delta slightly.
        assert!(
            (delta - logged).abs() < 0.5,
            "delta {delta} vs logged {logged}"
        );
    }

    #[test]
    fn failed_elements_radiate_nothing() {
        let mut sched = FaultSchedule::none();
        sched.failed_elements = vec![0, 9];
        let fe = FaultInjector::new(frozen_fe(4), sched).unwrap();
        let w = boresight(&fe);
        let fw = fe.faulted_weights(&w);
        assert_eq!(fw.as_slice()[0], Complex64::ZERO);
        assert_eq!(fw.as_slice()[9], Complex64::ZERO);
        assert_ne!(fw.as_slice()[1], Complex64::ZERO);
        // TRP drops by exactly the failed elements' share.
        let trp: f64 = fw.as_slice().iter().map(|x| x.norm_sqr()).sum();
        let full: f64 = w.as_slice().iter().map(|x| x.norm_sqr()).sum();
        assert!(trp < full);
    }

    #[test]
    fn unavailable_window_blacks_out_probes() {
        let mut sched = FaultSchedule::none();
        sched.unavailable = vec![(0.0, 10.0)];
        let mut fe = FaultInjector::new(frozen_fe(5), sched).unwrap();
        let w = boresight(&fe);
        let obs = fe.probe(&w);
        assert_eq!(obs.snr_db(), -60.0);
        assert!(matches!(
            fe.events()[0].kind,
            FaultKind::FrontEndUnavailable
        ));
    }

    #[test]
    fn gain_drift_perturbs_weights_boundedly() {
        let mut sched = FaultSchedule::none();
        sched.gain_drift_db = 2.0;
        sched.gain_drift_period_s = 0.5;
        let mut fe = FaultInjector::new(frozen_fe(6), sched).unwrap();
        let w = boresight(&fe);
        let fw = fe.faulted_weights(&w);
        let max_ratio = pow_from_db(2.0).sqrt();
        for (a, b) in w.as_slice().iter().zip(fw.as_slice()) {
            let r = b.abs() / a.abs();
            assert!(
                r >= 1.0 / max_ratio - 1e-9 && r <= max_ratio + 1e-9,
                "ratio {r}"
            );
        }
        // Drift is time-varying: advance the clock and the gains move.
        fe.probe(&w);
        fe.inner_mut().wait(0.1);
        let fw2 = fe.faulted_weights(&w);
        assert_ne!(fw.as_slice()[0], fw2.as_slice()[0]);
    }

    #[test]
    fn spec_string_round_trips() {
        let mut s = FaultSchedule::none();
        s.seed = 9;
        s.probe_loss = vec![ProbeLossWindow {
            start_s: 0.25,
            end_s: 1.5,
            loss_prob: 0.5,
        }];
        s.stale_prob = 0.1;
        s.snr_glitch = Some(SnrGlitch {
            prob: 0.2,
            mag_db: 6.0,
        });
        s.failed_elements = vec![0, 9];
        s.gain_drift_db = 2.0;
        s.gain_drift_period_s = 0.5;
        s.unavailable = vec![(1.0, 2.0)];
        let spec = s.spec_string();
        let back = FaultSchedule::parse_spec(&spec).unwrap();
        assert_eq!(back, s, "parse(spec) must reproduce the schedule");
        assert_eq!(back.spec_string(), spec, "spec form is canonical");
        // Inert schedules canonicalize to "none" and parse back inert.
        assert_eq!(FaultSchedule::none().spec_string(), "none");
        assert!(FaultSchedule::parse_spec("none").unwrap().is_inert());
        assert!(FaultSchedule::parse_spec("").unwrap().is_inert());
        // Malformed and invalid specs are rejected.
        assert!(FaultSchedule::parse_spec("loss=2@0..1").is_err());
        assert!(FaultSchedule::parse_spec("bogus").is_err());
        assert!(FaultSchedule::parse_spec("what=1").is_err());
    }

    #[test]
    fn invalid_schedule_fails_construction() {
        let mut s = FaultSchedule::none();
        s.stale_prob = 1.5;
        assert!(FaultInjector::new(frozen_fe(8), s).is_err());
    }

    #[test]
    fn schedule_validation_rejects_bad_inputs() {
        let mut s = FaultSchedule::none();
        s.stale_prob = 1.5;
        assert!(s.validate().is_err());
        let mut s = FaultSchedule::none();
        s.probe_loss = vec![ProbeLossWindow {
            start_s: 1.0,
            end_s: 1.0,
            loss_prob: 0.5,
        }];
        assert!(s.validate().is_err());
        let mut s = FaultSchedule::none();
        s.gain_drift_db = 1.0;
        s.gain_drift_period_s = 0.0;
        assert!(s.validate().is_err());
        assert!(FaultSchedule::none().validate().is_ok());
    }
}
