//! Hardware impairments over any [`SimFrontEnd`].
//!
//! [`ImpairedFrontEnd`] wraps a front end and distorts it the way a real
//! mmWave radio does (arXiv:1803.05665): oscillator phase noise, PA
//! AM/AM + AM/PM compression, static per-element gain/phase mismatch, mutual
//! coupling between elements, ADC quantization + clipping, and LO carrier
//! feedthrough. Where [`crate::faults::FaultInjector`] models discrete
//! *failures* (lost probes, dead elements, dark windows), this layer
//! models the *continuous* analog imperfections every front end has even
//! when nothing is broken — which is exactly what the paper's clean
//! simulator abstracts away.
//!
//! The stage pipeline splits by domain:
//!
//! - **Transmit weights** (probing *and* data slots, via
//!   [`SimFrontEnd::apply_radiated_faults`]): PA compression → per-element
//!   mismatch → mutual coupling. Multi-beam weights are deliberately
//!   non-constant-modulus, so the same PA back-off that leaves a single
//!   beam linear drives a two-beam taper's amplitude peaks into
//!   compression — the effect the impairment ablation quantifies.
//! - **Probe observations** (receive chain): LO phase noise (common
//!   rotation + ICI noise floor) → LO leakage at the DC subcarrier → ADC
//!   quantization and clipping.
//!
//! The wrapper obeys the same two invariants as the fault layer:
//!
//! - **All-off transparency** — with [`ImpairmentConfig::none`] the wrapper
//!   is bit-identical to the bare front end: no impairment RNG is ever
//!   consulted and every probe and weight vector passes through untouched.
//! - **Separate randomness** — every stochastic stage draws from its own
//!   salted [`Rng64`] stream derived from [`ImpairmentConfig::seed`], so
//!   toggling one stage neither perturbs the channel realization nor
//!   shifts another stage's draws.
//!
//! Per-slot stages are `#[hot_path]` and allocation-free: the mismatch
//! multipliers and coupling matrix are precomputed at construction, and
//! the coupling kernel runs on a fixed stack scratch.

use crate::faults::FaultEvent;
use crate::metrics::RunResult;
use crate::scenario::ScenarioError;
use crate::simulator::{run_front_end, LinkSimulator, SimFrontEnd};
use mmreliable::frontend::{LinkFrontEnd, ProbeKind};
use mmwave_array::coupling::{MutualCoupling, MAX_COUPLED_ELEMENTS};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_dsp::adc::{quantize_clip, rail_rms};
use mmwave_dsp::complex::Complex64;
use mmwave_dsp::nonlinearity::RappPa;
use mmwave_dsp::phase_noise::{rotate_with_ici, WienerPhase};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::amp_from_db;
use mmwave_hotpath::hot_path;
use mmwave_phy::chanest::ProbeObservation;

/// Nominal OFDM symbol duration the intra-symbol phase-jitter (ICI)
/// penalty integrates over: 1/Δf at the paper's 120 kHz subcarrier
/// spacing (cyclic prefix ignored).
pub const T_SYM_S: f64 = 1.0 / 120e3;

/// Salt folded into [`ImpairmentConfig::seed`] for the observation-domain
/// RNG stream (phase-noise steps + ICI draws).
const SEED_SALT_OBS: u64 = 0x1AFE_1AFE_1AFE_1AFE;
/// Salt for the static mismatch draws.
const SEED_SALT_MISMATCH: u64 = 0x1AFE_1AFE_4D15_4A7C;
/// Salt for the LO feedthrough phasor.
const SEED_SALT_LO: u64 = 0x1AFE_1AFE_0010_1EAC;

/// Oscillator phase-noise stage: a leaky-Wiener LO phase walk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseNoiseCfg {
    /// Lorentzian linewidth, Hz (e.g. `100e3` for an integrated mmWave PLL).
    pub linewidth_hz: f64,
    /// PLL pull-in time constant, seconds (`f64::INFINITY` = free-running).
    pub pll_tau_s: f64,
}

/// PA compression stage: per-element Rapp AM/AM + AM/PM.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PaCfg {
    /// Back-off of the saturation point above the uniform per-element
    /// drive (`1/√N`), dB. Smaller = harder compression.
    pub backoff_db: f64,
    /// Rapp knee sharpness `p` (2–3 typical for mmWave SSPAs).
    pub smoothness: f64,
    /// Maximum AM/PM rotation at deep saturation, degrees.
    pub am_pm_deg: f64,
}

/// Static per-element gain/phase mismatch stage (uncalibrated feed
/// network): each element gets a fixed multiplier drawn once at
/// construction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MismatchCfg {
    /// Per-element gain error standard deviation, dB.
    pub gain_sigma_db: f64,
    /// Per-element phase error standard deviation, degrees.
    pub phase_sigma_deg: f64,
}

/// Mutual-coupling stage: `w ← C·w` with a distance-decay coupling matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CouplingCfg {
    /// Nearest-neighbour coupling magnitude, dB (negative; e.g. `-25`).
    pub coupling_db: f64,
}

/// ADC stage: mid-rise quantization + clipping on probe measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdcCfg {
    /// Converter resolution, bits per I/Q rail.
    pub bits: u32,
    /// AGC headroom of full-scale above the block RMS, dB.
    pub headroom_db: f64,
}

/// LO leakage stage: carrier feedthrough concentrated at the subcarrier
/// nearest DC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoLeakageCfg {
    /// Feedthrough power relative to the carrier, dBc (negative).
    pub dbc: f64,
}

/// What the impairment layer does to the radio. The default configuration
/// impairs nothing.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ImpairmentConfig {
    /// Seed for the dedicated impairment RNG streams (independent of the
    /// channel RNG and the fault RNG).
    pub seed: u64,
    /// Oscillator phase noise. `None` disables.
    pub phase_noise: Option<PhaseNoiseCfg>,
    /// PA compression. `None` disables.
    pub pa: Option<PaCfg>,
    /// Static per-element gain/phase mismatch. `None` disables.
    pub mismatch: Option<MismatchCfg>,
    /// Mutual coupling. `None` disables.
    pub coupling: Option<CouplingCfg>,
    /// ADC quantization + clipping. `None` disables.
    pub adc: Option<AdcCfg>,
    /// LO leakage / carrier feedthrough. `None` disables.
    pub lo_leakage: Option<LoLeakageCfg>,
}

impl ImpairmentConfig {
    /// The inert configuration: impairs nothing, draws no randomness.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the configuration can never alter behaviour.
    pub fn is_inert(&self) -> bool {
        self.phase_noise.is_none()
            && self.pa.is_none()
            && self.mismatch.is_none()
            && self.coupling.is_none()
            && self.adc.is_none()
            && self.lo_leakage.is_none()
    }

    /// A gently impaired front end: a good integrated radio.
    pub fn mild(seed: u64) -> Self {
        Self {
            seed,
            // Effective (PLL-disciplined) linewidth. σ²_sym = 2π·Δν·T_sym,
            // so 100 Hz at 120 kHz SCS gives an ICI SNR ceiling of
            // ~23 dB — a couple of dB shaved off a healthy ~25 dB link.
            phase_noise: Some(PhaseNoiseCfg {
                linewidth_hz: 100.0,
                pll_tau_s: 1e-3,
            }),
            pa: Some(PaCfg {
                backoff_db: 8.0,
                smoothness: 3.0,
                am_pm_deg: 3.0,
            }),
            mismatch: Some(MismatchCfg {
                gain_sigma_db: 0.3,
                phase_sigma_deg: 2.0,
            }),
            coupling: Some(CouplingCfg { coupling_db: -30.0 }),
            adc: Some(AdcCfg {
                bits: 8,
                headroom_db: 12.0,
            }),
            lo_leakage: Some(LoLeakageCfg { dbc: -40.0 }),
        }
    }

    /// A typical low-cost mmWave front end.
    pub fn moderate(seed: u64) -> Self {
        Self {
            seed,
            // ICI ceiling ~13 dB: persistently degraded rounds, not outage.
            phase_noise: Some(PhaseNoiseCfg {
                linewidth_hz: 1e3,
                pll_tau_s: 1e-3,
            }),
            pa: Some(PaCfg {
                backoff_db: 4.5,
                smoothness: 3.0,
                am_pm_deg: 5.0,
            }),
            mismatch: Some(MismatchCfg {
                gain_sigma_db: 0.75,
                phase_sigma_deg: 5.0,
            }),
            coupling: Some(CouplingCfg { coupling_db: -25.0 }),
            adc: Some(AdcCfg {
                bits: 6,
                headroom_db: 9.0,
            }),
            lo_leakage: Some(LoLeakageCfg { dbc: -30.0 }),
        }
    }

    /// An aggressively impaired front end: everything near its spec limit.
    pub fn severe(seed: u64) -> Self {
        Self {
            seed,
            // ICI ceiling ~7.7 dB — hovering just above the 6 dB outage
            // threshold, the regime that stresses the lifecycle machine.
            phase_noise: Some(PhaseNoiseCfg {
                linewidth_hz: 3e3,
                pll_tau_s: 1e-3,
            }),
            pa: Some(PaCfg {
                backoff_db: 1.5,
                smoothness: 2.0,
                am_pm_deg: 8.0,
            }),
            mismatch: Some(MismatchCfg {
                gain_sigma_db: 1.5,
                phase_sigma_deg: 10.0,
            }),
            coupling: Some(CouplingCfg { coupling_db: -18.0 }),
            adc: Some(AdcCfg {
                bits: 4,
                headroom_db: 6.0,
            }),
            lo_leakage: Some(LoLeakageCfg { dbc: -22.0 }),
        }
    }

    /// Looks up a severity preset by name (`none`, `mild`, `moderate`,
    /// `severe`) — the vocabulary of the impairment ablation and the CI
    /// smoke sweep.
    pub fn preset(name: &str, seed: u64) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "mild" => Some(Self::mild(seed)),
            "moderate" => Some(Self::moderate(seed)),
            "severe" => Some(Self::severe(seed)),
            _ => None,
        }
    }

    /// Validates stage parameters.
    pub fn validate(&self) -> Result<(), String> {
        if let Some(pn) = &self.phase_noise {
            if !pn.linewidth_hz.is_finite() || pn.linewidth_hz <= 0.0 {
                return Err(format!("phase-noise linewidth {} not > 0", pn.linewidth_hz));
            }
            if pn.pll_tau_s <= 0.0 || pn.pll_tau_s.is_nan() {
                return Err(format!("PLL tau {} not > 0", pn.pll_tau_s));
            }
        }
        if let Some(pa) = &self.pa {
            if !pa.backoff_db.is_finite() {
                return Err(format!("PA backoff {} not finite", pa.backoff_db));
            }
            if !pa.smoothness.is_finite() || pa.smoothness <= 0.0 {
                return Err(format!("PA smoothness {} not > 0", pa.smoothness));
            }
            if !pa.am_pm_deg.is_finite() || pa.am_pm_deg < 0.0 {
                return Err(format!("PA AM/PM {} negative", pa.am_pm_deg));
            }
        }
        if let Some(mm) = &self.mismatch {
            if !mm.gain_sigma_db.is_finite() || mm.gain_sigma_db < 0.0 {
                return Err(format!("mismatch gain sigma {} negative", mm.gain_sigma_db));
            }
            if !mm.phase_sigma_deg.is_finite() || mm.phase_sigma_deg < 0.0 {
                return Err(format!(
                    "mismatch phase sigma {} negative",
                    mm.phase_sigma_deg
                ));
            }
        }
        if let Some(c) = &self.coupling {
            if !c.coupling_db.is_finite() || c.coupling_db >= 0.0 {
                return Err(format!("coupling {} dB must be negative", c.coupling_db));
            }
        }
        if let Some(adc) = &self.adc {
            if adc.bits == 0 || adc.bits > 16 {
                return Err(format!("ADC bits {} outside 1..=16", adc.bits));
            }
            if !adc.headroom_db.is_finite() || adc.headroom_db < 0.0 {
                return Err(format!("ADC headroom {} negative", adc.headroom_db));
            }
        }
        if let Some(lo) = &self.lo_leakage {
            if !lo.dbc.is_finite() || lo.dbc >= 0.0 {
                return Err(format!("LO leakage {} dBc must be negative", lo.dbc));
            }
        }
        Ok(())
    }

    /// Canonical one-line textual form — the `impairment` column of the
    /// campaign journal, parseable back with
    /// [`ImpairmentConfig::parse_spec`]. Inert configurations (regardless
    /// of seed, which is never consulted) canonicalize to `"none"`.
    ///
    /// Format: `;`-separated `key=value` fields in fixed order, e.g.
    /// `seed=7;pn=200000@0.001;pa=4.5@3@5;mm=0.75@5;cpl=-25;adc=6@9;lo=-30`.
    pub fn spec_string(&self) -> String {
        if self.is_inert() {
            return "none".into();
        }
        let mut parts = vec![format!("seed={}", self.seed)];
        if let Some(pn) = &self.phase_noise {
            parts.push(format!("pn={}@{}", pn.linewidth_hz, pn.pll_tau_s));
        }
        if let Some(pa) = &self.pa {
            parts.push(format!(
                "pa={}@{}@{}",
                pa.backoff_db, pa.smoothness, pa.am_pm_deg
            ));
        }
        if let Some(mm) = &self.mismatch {
            parts.push(format!("mm={}@{}", mm.gain_sigma_db, mm.phase_sigma_deg));
        }
        if let Some(c) = &self.coupling {
            parts.push(format!("cpl={}", c.coupling_db));
        }
        if let Some(adc) = &self.adc {
            parts.push(format!("adc={}@{}", adc.bits, adc.headroom_db));
        }
        if let Some(lo) = &self.lo_leakage {
            parts.push(format!("lo={}", lo.dbc));
        }
        parts.join(";")
    }

    /// Parses an [`ImpairmentConfig::spec_string`] back into a validated
    /// configuration. Accepts `"none"` (or an empty string) for the inert
    /// configuration.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        fn f64_field(s: &str, what: &str) -> Result<f64, String> {
            s.parse::<f64>()
                .map_err(|e| format!("bad {what} {s:?}: {e}"))
        }
        let spec = spec.trim();
        if spec.is_empty() || spec == "none" {
            return Ok(Self::none());
        }
        let mut out = Self::none();
        for part in spec.split(';') {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("bad impairment field {part:?} (want key=value)"))?;
            match key {
                "seed" => {
                    out.seed = val
                        .parse::<u64>()
                        .map_err(|e| format!("bad seed {val:?}: {e}"))?;
                }
                "pn" => {
                    let (lw, tau) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad pn {val:?} (want linewidth@tau)"))?;
                    out.phase_noise = Some(PhaseNoiseCfg {
                        linewidth_hz: f64_field(lw, "linewidth")?,
                        pll_tau_s: f64_field(tau, "pll tau")?,
                    });
                }
                "pa" => {
                    let mut it = val.split('@');
                    let (b, s, a) = (it.next(), it.next(), it.next());
                    match (b, s, a, it.next()) {
                        (Some(b), Some(s), Some(a), None) => {
                            out.pa = Some(PaCfg {
                                backoff_db: f64_field(b, "pa backoff")?,
                                smoothness: f64_field(s, "pa smoothness")?,
                                am_pm_deg: f64_field(a, "pa am/pm")?,
                            });
                        }
                        _ => return Err(format!("bad pa {val:?} (want backoff@smooth@ampm)")),
                    }
                }
                "mm" => {
                    let (g, p) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad mm {val:?} (want gain@phase)"))?;
                    out.mismatch = Some(MismatchCfg {
                        gain_sigma_db: f64_field(g, "mismatch gain")?,
                        phase_sigma_deg: f64_field(p, "mismatch phase")?,
                    });
                }
                "cpl" => {
                    out.coupling = Some(CouplingCfg {
                        coupling_db: f64_field(val, "coupling")?,
                    });
                }
                "adc" => {
                    let (b, h) = val
                        .split_once('@')
                        .ok_or_else(|| format!("bad adc {val:?} (want bits@headroom)"))?;
                    out.adc = Some(AdcCfg {
                        bits: b
                            .parse::<u32>()
                            .map_err(|e| format!("bad adc bits {b:?}: {e}"))?,
                        headroom_db: f64_field(h, "adc headroom")?,
                    });
                }
                "lo" => {
                    out.lo_leakage = Some(LoLeakageCfg {
                        dbc: f64_field(val, "lo leakage")?,
                    });
                }
                _ => return Err(format!("unknown impairment field {key:?}")),
            }
        }
        out.validate()?;
        Ok(out)
    }
}

/// One impairment annotation, typed and timestamped.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ImpairmentEvent {
    /// When it was observed, seconds (front-end clock).
    pub t_s: f64,
    /// What was observed.
    pub kind: ImpairmentKind,
}

/// The impairment stages, for annotation purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImpairmentStage {
    /// Oscillator phase noise.
    PhaseNoise,
    /// PA compression.
    Pa,
    /// Per-element gain/phase mismatch.
    Mismatch,
    /// Mutual coupling.
    Coupling,
    /// ADC quantization.
    Adc,
    /// LO leakage.
    LoLeakage,
}

impl std::fmt::Display for ImpairmentStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ImpairmentStage::PhaseNoise => "phase-noise",
            ImpairmentStage::Pa => "pa",
            ImpairmentStage::Mismatch => "mismatch",
            ImpairmentStage::Coupling => "coupling",
            ImpairmentStage::Adc => "adc",
            ImpairmentStage::LoLeakage => "lo-leakage",
        };
        write!(f, "{s}")
    }
}

/// The kinds of impairment annotation the layer produces. Stage-enabled
/// markers fire once at the first probe; threshold crossings (saturation,
/// clipping) fire once on their rising edge so a saturated run does not
/// flood the event log.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ImpairmentKind {
    /// A stage is active for this run (logged once, at the first probe).
    StageEnabled {
        /// Which stage.
        stage: ImpairmentStage,
    },
    /// The PA entered meaningful compression (> 1 dB on some element).
    PaSaturated {
        /// Worst per-element compression observed at the crossing, dB.
        peak_compression_db: f64,
    },
    /// The ADC clipped a meaningful fraction of rails (> 5 %).
    AdcClipped {
        /// Clipped-rail fraction at the crossing, in `[0, 1]`.
        clip_fraction: f64,
    },
}

impl std::fmt::Display for ImpairmentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImpairmentKind::StageEnabled { stage } => write!(f, "impairment-enabled({stage})"),
            ImpairmentKind::PaSaturated {
                peak_compression_db,
            } => write!(f, "pa-saturated({peak_compression_db:.1}dB)"),
            ImpairmentKind::AdcClipped { clip_fraction } => {
                write!(f, "adc-clipped({:.0}%)", clip_fraction * 100.0)
            }
        }
    }
}

/// A [`LinkFrontEnd`] decorator that applies the analog impairments of an
/// [`ImpairmentConfig`] between the beam-management layer and the radio.
/// Stacks under [`crate::faults::FaultInjector`] (impairments sit nearest
/// the hardware; discrete faults corrupt the already-impaired radio).
pub struct ImpairedFrontEnd<F> {
    inner: F,
    config: ImpairmentConfig,
    /// Observation-domain stream: phase-noise steps + ICI draws.
    rng: Rng64,
    phase: Option<WienerPhase>,
    last_probe_t_s: f64,
    pa: Option<RappPa>,
    /// Static per-element multipliers (empty when mismatch is disabled).
    mismatch: Vec<Complex64>,
    coupling: Option<MutualCoupling>,
    lo_phasor: Complex64,
    events: Vec<ImpairmentEvent>,
    stages_logged: bool,
    pa_event_logged: bool,
    adc_event_logged: bool,
}

impl<F: LinkFrontEnd> ImpairedFrontEnd<F> {
    /// Wraps `inner` under `config`, failing fast on invalid parameters —
    /// a mis-specified campaign cell surfaces as a `Validation` failure
    /// before any sweep time is spent. The typed [`ScenarioError`] lets
    /// the scenario fuzzer tell this reject apart from a real run failure.
    pub fn new(inner: F, config: ImpairmentConfig) -> Result<Self, ScenarioError> {
        config.validate().map_err(ScenarioError::impairment)?;
        let geom = inner.geometry();
        let n = geom.num_elements();
        if n > MAX_COUPLED_ELEMENTS {
            return Err(ScenarioError::impairment(format!(
                "impairment layer supports at most {MAX_COUPLED_ELEMENTS} elements, got {n}"
            )));
        }
        let phase = config
            .phase_noise
            .map(|pn| WienerPhase::new(pn.linewidth_hz, pn.pll_tau_s));
        let pa = config.pa.map(|pa| {
            RappPa::with_backoff(
                1.0 / (n as f64).sqrt(),
                pa.backoff_db,
                pa.smoothness,
                pa.am_pm_deg,
            )
        });
        // Each static stage draws from its own salted stream so toggling
        // one stage never shifts another stage's realization.
        let mismatch = match &config.mismatch {
            Some(mm) => {
                let mut rng = Rng64::seed(config.seed ^ SEED_SALT_MISMATCH);
                (0..n)
                    .map(|_| {
                        let gain_db = mm.gain_sigma_db * rng.normal();
                        let phase = mm.phase_sigma_deg.to_radians() * rng.normal();
                        Complex64::from_polar(amp_from_db(gain_db), phase)
                    })
                    .collect()
            }
            None => Vec::new(),
        };
        let coupling = config
            .coupling
            .map(|c| MutualCoupling::from_geometry(geom, c.coupling_db, 1.0));
        let lo_phasor = if config.lo_leakage.is_some() {
            Rng64::seed(config.seed ^ SEED_SALT_LO).random_phasor()
        } else {
            Complex64::ONE
        };
        Ok(Self {
            inner,
            rng: Rng64::seed(config.seed ^ SEED_SALT_OBS),
            config,
            phase,
            last_probe_t_s: 0.0,
            pa,
            mismatch,
            coupling,
            lo_phasor,
            events: Vec::new(),
            stages_logged: false,
            pa_event_logged: false,
            adc_event_logged: false,
        })
    }

    /// The wrapped front end.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The wrapped front end, mutably.
    pub fn inner_mut(&mut self) -> &mut F {
        &mut self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &ImpairmentConfig {
        &self.config
    }

    /// Annotations recorded so far (drained by the run loop; also
    /// inspectable directly in unit tests).
    pub fn events(&self) -> &[ImpairmentEvent] {
        &self.events
    }

    /// Takes and clears the recorded annotations.
    pub fn take_events(&mut self) -> Vec<ImpairmentEvent> {
        std::mem::take(&mut self.events)
    }

    /// True when any transmit-weight stage is enabled.
    fn has_weight_stages(&self) -> bool {
        self.pa.is_some() || !self.mismatch.is_empty() || self.coupling.is_some()
    }

    /// The transmit-chain pipeline: PA compression → per-element mismatch
    /// → mutual coupling, in place. Returns the worst per-element PA
    /// compression observed, dB. Allocation-free: the coupling scratch
    /// lives on the stack (sized by [`MAX_COUPLED_ELEMENTS`]).
    #[hot_path]
    fn impair_weights_core(&self, v: &mut [Complex64]) -> f64 {
        let mut worst_db = 0.0;
        if let Some(pa) = &self.pa {
            worst_db = pa.apply(v);
        }
        if !self.mismatch.is_empty() {
            for (x, m) in v.iter_mut().zip(&self.mismatch) {
                *x *= *m;
            }
        }
        if let Some(cpl) = &self.coupling {
            let mut scratch = [Complex64::ZERO; MAX_COUPLED_ELEMENTS];
            cpl.apply_in_place(v, &mut scratch);
        }
        worst_db
    }

    /// The impaired weights actually radiated for `w` — clone-and-transform
    /// convenience for tests; the per-slot path uses
    /// [`SimFrontEnd::radiated_weights_into`] instead.
    pub fn impaired_weights(&self, w: &BeamWeights) -> BeamWeights {
        let mut out = w.clone();
        self.impair_weights_core(out.as_mut_slice());
        out
    }

    fn log_enabled_stages(&mut self, t_s: f64) {
        if self.stages_logged {
            return;
        }
        self.stages_logged = true;
        let c = &self.config;
        let stages = [
            (c.phase_noise.is_some(), ImpairmentStage::PhaseNoise),
            (c.pa.is_some(), ImpairmentStage::Pa),
            (c.mismatch.is_some(), ImpairmentStage::Mismatch),
            (c.coupling.is_some(), ImpairmentStage::Coupling),
            (c.adc.is_some(), ImpairmentStage::Adc),
            (c.lo_leakage.is_some(), ImpairmentStage::LoLeakage),
        ];
        for (enabled, stage) in stages {
            if enabled {
                self.events.push(ImpairmentEvent {
                    t_s,
                    kind: ImpairmentKind::StageEnabled { stage },
                });
            }
        }
    }

    fn note_pa_compression(&mut self, t_s: f64, worst_db: f64) {
        if worst_db > 1.0 && !self.pa_event_logged {
            self.pa_event_logged = true;
            self.events.push(ImpairmentEvent {
                t_s,
                kind: ImpairmentKind::PaSaturated {
                    peak_compression_db: worst_db,
                },
            });
        }
    }

    /// The receive-chain pipeline on one probe observation: phase noise
    /// (common rotation + ICI) → LO leakage at the DC subcarrier → ADC
    /// quantization and clipping.
    fn corrupt_observation(&mut self, mut obs: ProbeObservation, t_s: f64) -> ProbeObservation {
        if let Some(pn) = self.phase.as_mut() {
            let dt = (t_s - self.last_probe_t_s).max(0.0);
            let phi = pn.advance(dt, &mut self.rng);
            let sigma2 = pn.symbol_jitter_var(T_SYM_S);
            if !obs.csi.is_empty() {
                // The ICI term is interference, not signal: it corrupts
                // the CSI samples *and* raises the observation's effective
                // noise floor, which is what gives phase noise its SNR
                // ceiling `1/(e^{σ²} − 1)`.
                let mean_pow =
                    obs.csi.iter().map(|h| h.norm_sqr()).sum::<f64>() / obs.csi.len() as f64;
                obs.noise_power_mw += mean_pow * (1.0 - (-sigma2).exp());
            }
            rotate_with_ici(&mut obs.csi, phi, sigma2, &mut self.rng);
        }
        self.last_probe_t_s = t_s;
        if let Some(lo) = &self.config.lo_leakage {
            if !obs.csi.is_empty() {
                let n = obs.csi.len();
                let rms = (obs.csi.iter().map(|h| h.norm_sqr()).sum::<f64>() / n as f64).sqrt();
                // All the feedthrough energy lands on the subcarrier
                // nearest DC (the carrier tone), so its amplitude relative
                // to the per-subcarrier RMS gains a √N concentration.
                let mut k = 0;
                let mut best = f64::INFINITY;
                for (i, f) in obs.freqs_hz.iter().enumerate() {
                    if f.abs() < best {
                        best = f.abs();
                        k = i;
                    }
                }
                let amp = amp_from_db(lo.dbc) * rms * (n as f64).sqrt();
                obs.csi[k] += self.lo_phasor.scale(amp);
            }
        }
        if let Some(adc) = &self.config.adc {
            if !obs.csi.is_empty() {
                let full_scale = rail_rms(&obs.csi) * amp_from_db(adc.headroom_db);
                let clips = quantize_clip(&mut obs.csi, full_scale, adc.bits);
                let frac = clips as f64 / (2 * obs.csi.len()) as f64;
                if frac > 0.05 && !self.adc_event_logged {
                    self.adc_event_logged = true;
                    self.events.push(ImpairmentEvent {
                        t_s,
                        kind: ImpairmentKind::AdcClipped {
                            clip_fraction: frac,
                        },
                    });
                }
            }
        }
        obs
    }
}

impl<F: LinkFrontEnd> LinkFrontEnd for ImpairedFrontEnd<F> {
    fn geometry(&self) -> &ArrayGeometry {
        self.inner.geometry()
    }

    fn probe_kind(&mut self, weights: &BeamWeights, kind: ProbeKind) -> ProbeObservation {
        // All-off transparency: forward untouched, consult no RNG.
        if self.config.is_inert() {
            return self.inner.probe_kind(weights, kind);
        }
        let t_s = self.inner.now_s();
        self.log_enabled_stages(t_s);
        let obs = if self.has_weight_stages() {
            let mut w = weights.clone();
            let worst_db = self.impair_weights_core(w.as_mut_slice());
            self.note_pa_compression(t_s, worst_db);
            self.inner.probe_kind(&w, kind)
        } else {
            self.inner.probe_kind(weights, kind)
        };
        self.corrupt_observation(obs, t_s)
    }

    fn wait(&mut self, dur_s: f64) {
        self.inner.wait(dur_s);
    }

    fn now_s(&self) -> f64 {
        self.inner.now_s()
    }

    fn cancel_requested(&self) -> bool {
        self.inner.cancel_requested()
    }

    fn probes_used(&self) -> usize {
        self.inner.probes_used()
    }
}

impl<F: SimFrontEnd> SimFrontEnd for ImpairedFrontEnd<F> {
    fn sim(&self) -> &LinkSimulator {
        self.inner.sim()
    }

    fn sim_mut(&mut self) -> &mut LinkSimulator {
        self.inner.sim_mut()
    }

    #[hot_path]
    fn apply_radiated_faults(&self, w: &mut BeamWeights) {
        // The data plane radiates through the same compressed, mismatched,
        // coupled hardware the probes see; compose with the inner stack.
        if self.has_weight_stages() {
            self.impair_weights_core(w.as_mut_slice());
        }
        self.inner.apply_radiated_faults(w);
    }

    fn drain_fault_events(&mut self) -> Vec<FaultEvent> {
        self.inner.drain_fault_events()
    }

    fn drain_impairment_events(&mut self) -> Vec<ImpairmentEvent> {
        let mut evs = self.inner.drain_impairment_events();
        evs.extend(self.take_events());
        evs
    }
}

impl<F: SimFrontEnd> ImpairedFrontEnd<F> {
    /// Plays `strategy` through the impaired stack — the impairment-layer
    /// counterpart of [`LinkSimulator::run`].
    pub fn run(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
    ) -> RunResult {
        run_front_end(
            self,
            strategy,
            duration_s,
            tick_period_s,
            scenario_name,
            0.0,
        )
    }

    /// Impaired counterpart of [`LinkSimulator::run_with_warmup`].
    pub fn run_with_warmup(
        &mut self,
        strategy: &mut dyn BeamStrategy,
        duration_s: f64,
        tick_period_s: f64,
        scenario_name: &str,
        warmup_s: f64,
    ) -> RunResult {
        run_front_end(
            self,
            strategy,
            duration_s,
            tick_period_s,
            scenario_name,
            warmup_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmreliable::frontend::SnapshotFrontEnd;
    use mmwave_channel::channel::{GeometricChannel, UeReceiver};
    use mmwave_channel::environment::Scene;
    use mmwave_channel::geom2d::v2;
    use mmwave_dsp::units::FC_28GHZ;
    use mmwave_phy::chanest::ChannelSounder;

    fn frozen_fe(seed: u64) -> SnapshotFrontEnd {
        let scene = Scene::conference_room(FC_28GHZ);
        let paths = scene.paths_to(v2(0.9, 7.0), 180.0);
        SnapshotFrontEnd::new(
            GeometricChannel::new(paths, FC_28GHZ),
            ChannelSounder::paper_indoor(),
            ArrayGeometry::paper_8x8(),
            UeReceiver::Omni,
            Rng64::seed(seed),
        )
    }

    fn boresight(fe: &impl LinkFrontEnd) -> BeamWeights {
        mmwave_array::steering::single_beam(fe.geometry(), 0.0)
    }

    #[test]
    fn inert_config_is_bit_identical() {
        let mut plain = frozen_fe(7);
        let w = boresight(&plain);
        let direct: Vec<ProbeObservation> = (0..16).map(|_| plain.probe(&w)).collect();
        let mut wrapped = ImpairedFrontEnd::new(frozen_fe(7), ImpairmentConfig::none()).unwrap();
        for d in &direct {
            let o = wrapped.probe(&w);
            assert_eq!(o.csi, d.csi, "all-off wrapper must be transparent");
        }
        assert!(wrapped.events().is_empty());
        assert!(ImpairmentConfig::none().is_inert());
    }

    #[test]
    fn pa_compresses_probes_and_logs_saturation() {
        let mut cfg = ImpairmentConfig::none();
        cfg.pa = Some(PaCfg {
            backoff_db: -6.0, // saturation well below the uniform drive
            smoothness: 3.0,
            am_pm_deg: 5.0,
        });
        let mut fe = ImpairedFrontEnd::new(frozen_fe(1), cfg).unwrap();
        let mut clean = frozen_fe(1);
        let w = boresight(&fe);
        let hot = fe.probe(&w);
        let cold = clean.probe(&w);
        assert!(
            hot.snr_db() < cold.snr_db() - 2.0,
            "deep compression must cost SNR: {} vs {}",
            hot.snr_db(),
            cold.snr_db()
        );
        assert!(fe
            .events()
            .iter()
            .any(|e| matches!(e.kind, ImpairmentKind::PaSaturated { .. })));
        // Rising-edge only: a second saturated probe logs nothing new.
        let n = fe.events().len();
        fe.probe(&w);
        assert_eq!(fe.events().len(), n);
    }

    #[test]
    fn mismatch_is_static_and_seeded() {
        let mut cfg = ImpairmentConfig::none();
        cfg.seed = 4;
        cfg.mismatch = Some(MismatchCfg {
            gain_sigma_db: 1.0,
            phase_sigma_deg: 5.0,
        });
        let fe = ImpairedFrontEnd::new(frozen_fe(2), cfg.clone()).unwrap();
        let w = boresight(&fe);
        let a = fe.impaired_weights(&w);
        let b = fe.impaired_weights(&w);
        assert_eq!(a.as_slice(), b.as_slice(), "mismatch is static");
        assert_ne!(a.as_slice(), w.as_slice(), "mismatch perturbs weights");
        // Same seed reproduces the same draw; another seed differs.
        let fe2 = ImpairedFrontEnd::new(frozen_fe(2), cfg.clone()).unwrap();
        assert_eq!(fe2.impaired_weights(&w).as_slice(), a.as_slice());
        let mut other = cfg;
        other.seed = 5;
        let fe3 = ImpairedFrontEnd::new(frozen_fe(2), other).unwrap();
        assert_ne!(fe3.impaired_weights(&w).as_slice(), a.as_slice());
    }

    #[test]
    fn coupling_perturbs_weights_gently() {
        let mut cfg = ImpairmentConfig::none();
        cfg.coupling = Some(CouplingCfg { coupling_db: -20.0 });
        let fe = ImpairedFrontEnd::new(frozen_fe(3), cfg).unwrap();
        let w = boresight(&fe);
        let cw = fe.impaired_weights(&w);
        let delta: f64 = w
            .as_slice()
            .iter()
            .zip(cw.as_slice())
            .map(|(a, b)| (*a - *b).abs())
            .sum();
        assert!(delta > 1e-6, "coupling must do something");
        let norm: f64 = w.as_slice().iter().map(|x| x.abs()).sum();
        assert!(delta < 0.5 * norm, "but stay a perturbation");
    }

    #[test]
    fn adc_clipping_logs_once_and_costs_fidelity() {
        let mut cfg = ImpairmentConfig::none();
        cfg.adc = Some(AdcCfg {
            bits: 3,
            headroom_db: 0.0, // full scale at RMS: guaranteed clipping
        });
        let mut fe = ImpairedFrontEnd::new(frozen_fe(6), cfg).unwrap();
        let w = boresight(&fe);
        fe.probe(&w);
        let clip_events = fe
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ImpairmentKind::AdcClipped { .. }))
            .count();
        assert_eq!(clip_events, 1);
        fe.probe(&w);
        let clip_events_after = fe
            .events()
            .iter()
            .filter(|e| matches!(e.kind, ImpairmentKind::AdcClipped { .. }))
            .count();
        assert_eq!(clip_events_after, 1, "rising-edge only");
    }

    #[test]
    fn phase_noise_caps_probe_snr() {
        let mut cfg = ImpairmentConfig::none();
        cfg.phase_noise = Some(PhaseNoiseCfg {
            linewidth_hz: 5e6, // savage linewidth → low ICI ceiling
            pll_tau_s: 1e-3,
        });
        let mut fe = ImpairedFrontEnd::new(frozen_fe(8), cfg).unwrap();
        let mut clean = frozen_fe(8);
        let w = boresight(&fe);
        let noisy = fe.probe(&w);
        let ideal = clean.probe(&w);
        // σ²_sym = 2π·5e6/120e3 ≈ 262 rad² → ICI fully dominates: the
        // ceiling is ~0 dB signal-to-ICI regardless of link budget.
        assert!(
            noisy.snr_db() < ideal.snr_db() - 10.0,
            "ICI ceiling must bite: {} vs {}",
            noisy.snr_db(),
            ideal.snr_db()
        );
    }

    #[test]
    fn lo_leakage_spikes_the_dc_subcarrier() {
        let mut cfg = ImpairmentConfig::none();
        cfg.lo_leakage = Some(LoLeakageCfg { dbc: -10.0 });
        let mut fe = ImpairedFrontEnd::new(frozen_fe(9), cfg).unwrap();
        let mut clean = frozen_fe(9);
        let w = boresight(&fe);
        let leaky = fe.probe(&w);
        let ideal = clean.probe(&w);
        // Find the DC subcarrier: only it moved.
        let mut k_dc = 0;
        let mut best = f64::INFINITY;
        for (i, f) in ideal.freqs_hz.iter().enumerate() {
            if f.abs() < best {
                best = f.abs();
                k_dc = i;
            }
        }
        for (i, (a, b)) in leaky.csi.iter().zip(&ideal.csi).enumerate() {
            if i == k_dc {
                assert!(
                    (*a - *b).abs() > 1e-9,
                    "DC subcarrier must carry feedthrough"
                );
            } else {
                assert_eq!(a, b, "off-DC subcarriers untouched");
            }
        }
    }

    #[test]
    fn spec_string_round_trips() {
        for cfg in [
            ImpairmentConfig::mild(3),
            ImpairmentConfig::moderate(7),
            ImpairmentConfig::severe(11),
        ] {
            let spec = cfg.spec_string();
            let back = ImpairmentConfig::parse_spec(&spec).unwrap();
            assert_eq!(back, cfg, "parse(spec) must reproduce the config");
            assert_eq!(back.spec_string(), spec, "spec form is canonical");
        }
        assert_eq!(ImpairmentConfig::none().spec_string(), "none");
        assert!(ImpairmentConfig::parse_spec("none").unwrap().is_inert());
        assert!(ImpairmentConfig::parse_spec("").unwrap().is_inert());
        assert!(ImpairmentConfig::parse_spec("pa=1@2").is_err());
        assert!(ImpairmentConfig::parse_spec("cpl=3").is_err());
        assert!(ImpairmentConfig::parse_spec("adc=0@6").is_err());
        assert!(ImpairmentConfig::parse_spec("what=1").is_err());
        assert!(ImpairmentConfig::parse_spec("bogus").is_err());
    }

    #[test]
    fn presets_are_valid_and_ordered() {
        for name in ["none", "mild", "moderate", "severe"] {
            let cfg = ImpairmentConfig::preset(name, 1).unwrap();
            cfg.validate().unwrap();
        }
        assert!(ImpairmentConfig::preset("brutal", 1).is_none());
        // Severity ordering on the axes that matter.
        let (m, s) = (ImpairmentConfig::mild(1), ImpairmentConfig::severe(1));
        assert!(m.pa.unwrap().backoff_db > s.pa.unwrap().backoff_db);
        assert!(m.adc.unwrap().bits > s.adc.unwrap().bits);
        assert!(m.phase_noise.unwrap().linewidth_hz < s.phase_noise.unwrap().linewidth_hz);
    }

    #[test]
    fn invalid_config_fails_construction() {
        let mut cfg = ImpairmentConfig::none();
        cfg.adc = Some(AdcCfg {
            bits: 0,
            headroom_db: 6.0,
        });
        assert!(ImpairedFrontEnd::new(frozen_fe(10), cfg).is_err());
        let mut cfg = ImpairmentConfig::none();
        cfg.coupling = Some(CouplingCfg { coupling_db: 3.0 });
        assert!(cfg.validate().is_err());
        let mut cfg = ImpairmentConfig::none();
        cfg.phase_noise = Some(PhaseNoiseCfg {
            linewidth_hz: -1.0,
            pll_tau_s: 1e-3,
        });
        assert!(cfg.validate().is_err());
        assert!(ImpairmentConfig::none().validate().is_ok());
    }

    #[test]
    fn toggling_one_stage_keeps_another_stage_realization() {
        // The mismatch realization must not depend on whether phase noise
        // is enabled (per-stage salted RNG streams).
        let mut only_mm = ImpairmentConfig::none();
        only_mm.seed = 21;
        only_mm.mismatch = Some(MismatchCfg {
            gain_sigma_db: 1.0,
            phase_sigma_deg: 5.0,
        });
        let mut mm_and_pn = only_mm.clone();
        mm_and_pn.phase_noise = Some(PhaseNoiseCfg {
            linewidth_hz: 100e3,
            pll_tau_s: 1e-3,
        });
        let fe_a = ImpairedFrontEnd::new(frozen_fe(1), only_mm).unwrap();
        let fe_b = ImpairedFrontEnd::new(frozen_fe(1), mm_and_pn).unwrap();
        let w = boresight(&fe_a);
        assert_eq!(
            fe_a.impaired_weights(&w).as_slice(),
            fe_b.impaired_weights(&w).as_slice()
        );
    }
}
