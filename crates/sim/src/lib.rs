//! # mmwave-sim
//!
//! The slot-level link simulator and experiment harness of the mmReliable
//! reproduction — the stand-in for the paper's physical testbed loop
//! (gantry + human blockers + MATLAB post-processing, §5–§6).
//!
//! - [`simulator::LinkSimulator`] — binds a [`mmwave_channel::DynamicChannel`]
//!   to a beam-management strategy. It implements
//!   [`mmreliable::LinkFrontEnd`], so *probes advance simulated time*:
//!   a reactive scheme's 6 ms scan really costs 6 ms of link downtime, and
//!   the channel keeps evolving underneath it.
//! - [`metrics`] — reliability (paper Eq. 1), throughput, and the
//!   throughput-reliability product, computed from one unified per-slot
//!   record; CSV emitters for the figure pipeline.
//! - [`scenario`] — the paper's experiment library: static link with a
//!   walking blocker (Fig. 16/18a), mobile link with mid-run blockage
//!   (Fig. 18b/c), gantry rotation (Fig. 17a/b), 1-s translation
//!   (Fig. 17c), outdoor long links, and Appendix B's 28-vs-60 GHz scene.
//! - [`faults`] — seeded fault injection over any front end: probe loss,
//!   stale CSI, SNR glitches, element failures, gain drift, and
//!   unavailability windows, each logged as a typed event.
//! - [`impairments`] — seeded analog hardware impairments over any front
//!   end: oscillator phase noise, PA AM/AM + AM/PM compression,
//!   per-element mismatch, mutual coupling, ADC quantization/clipping, and
//!   LO leakage — all-off is bit-identical to the bare front end.
//! - [`fleet`] — the multi-UE cell: N independent per-UE links sharing
//!   one precomputed environment ([`mmwave_channel::SharedSceneCache`]),
//!   their lifecycle state owned by one [`mmreliable::StateHandler`] per
//!   shard, scheduled deterministically so the fleet digest is invariant
//!   to worker/shard count and a fleet of size 1 is bit-identical to the
//!   single-link pipeline.
//! - [`spec`] — deterministic, serializable scenario descriptions: every
//!   curated scenario (and declarative custom worlds, and per-UE fleet
//!   mixes) as a one-line plain-text spec that round-trips and rebuilds
//!   the exact same [`scenario::Scenario`] values, bit-identical digests
//!   included.
//! - [`fuzz`] — the property-based scenario fuzzer: random-but-valid
//!   specs run against lifecycle/recovery/determinism oracles, with
//!   greedy shrinking and replayable counterexample journal lines.
//! - [`runner`] — seeded multi-run sweeps across OS threads with
//!   aggregation.
//! - [`campaign`] — the resilient campaign supervisor: watchdogged
//!   (scenario × strategy × seed × fault) sweeps with per-run deadlines,
//!   bounded retry + deterministic backoff, a crash-consistent JSONL
//!   journal with resume, priority shedding under a campaign deadline,
//!   and deterministic single-threaded failure replay (DESIGN.md §9).
//!
//! The per-slot compute path is allocation-free in steady state: the
//! simulator owns a [`simulator::SlotWorkspace`] whose
//! [`mmwave_channel::ChannelSnapshot`] is rebuilt at most once per
//! simulated instant and read by every consumer (sounder, strategy truth
//! observer, SNR metric). See DESIGN.md §8 for the dataflow and buffer
//! ownership rules; enable the `perf-counters` feature to get per-run
//! counters on [`metrics::RunResult::counters`].

#![warn(missing_docs)]
pub mod campaign;
pub mod faults;
pub mod fleet;
pub mod fuzz;
pub mod impairments;
pub mod metrics;
pub mod runner;
pub mod scenario;
pub mod simulator;
pub mod spec;

pub use campaign::{
    backoff_delay, closure_jobs, impairment_note, load_journal, replay_cell, run_campaign,
    CampaignConfig, CampaignFailure, CampaignReport, CellKey, CellOutcome, CellStatus, FailureKind,
    Job, JournalEntry,
};
pub use faults::{FaultEvent, FaultInjector, FaultKind, FaultSchedule, ProbeLossWindow};
pub use fleet::{
    fleet_digest, fleet_note, parse_fleet_scenario, replay_fleet_entry, run_fleet, shard_of,
    ue_seed, FleetConfig, FleetReplay, FleetReport, FleetScenarioRef, FleetShard, UeOutcome,
};
pub use impairments::{
    ImpairedFrontEnd, ImpairmentConfig, ImpairmentEvent, ImpairmentKind, ImpairmentStage,
};
pub use metrics::{csv_field, csv_parse_row, RunCounters, RunEvent, RunResult, Sample};
pub use runner::{run_many, try_run_many, Aggregate, FailedRun};
pub use scenario::{Scenario, ScenarioError, ValidationMessage};
pub use simulator::{run_front_end, LinkSimulator, SimFrontEnd, SlotLoop, SlotWorkspace};
pub use spec::{spec_note, CustomWorld, FleetMixSpec, MixGroup, ScenarioSpec, WorldSpec};
