//! Snapshot coherence: the workspace [`ChannelSnapshot`] path must be
//! *bitwise* interchangeable with querying the [`DynamicChannel`] directly.
//!
//! [`LinkSimulator::true_snr_db`] reads the channel through the per-slot
//! snapshot (steering rows, phase table, and ray-trace caches included).
//! These properties recompute the same SNR from scratch — a fresh
//! `channel_at` query plus the allocating `csi` path — and demand exact
//! bit equality for ULA and UPA front ends across arbitrary times, beam
//! angles, and query orders. Any drift here would silently break the
//! fixed-seed reproducibility contract (DESIGN.md §8).

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_array::weights::BeamWeights;
use mmwave_channel::blockage::BlockageProcess;
use mmwave_channel::channel::UeReceiver;
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::mobility::{Pose, Trajectory};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, mw_from_dbm, pow_from_db, FC_28GHZ, SPEED_OF_LIGHT};
use mmwave_phy::chanest::ChannelSounder;
use mmwave_sim::simulator::LinkSimulator;
use proptest::prelude::*;

use mmreliable::frontend::LinkFrontEnd;

/// A walking-speed translate-and-rotate trajectory through the conference
/// room, so every drawn timestamp sees a different pose (and therefore a
/// fresh ray trace, steering rows, and phase table in the snapshot).
fn walker_sim(geom: ArrayGeometry) -> LinkSimulator {
    let dynamic = DynamicChannel::new(
        Scene::conference_room(FC_28GHZ),
        Trajectory::TranslateRotate {
            start: Pose {
                pos: v2(-1.2, 6.5),
                facing_deg: 170.0,
            },
            velocity: v2(1.0, -0.4),
            rate_deg_s: 25.0,
        },
        BlockageProcess::none(),
    );
    LinkSimulator::new(
        dynamic,
        ChannelSounder::paper_indoor(),
        geom,
        UeReceiver::Omni,
        Rng64::seed(17),
    )
}

/// Recomputes [`LinkSimulator::true_snr_db`] from first principles at an
/// explicit time: a fresh `channel_at` query and the allocating
/// [`mmwave_channel::channel::GeometricChannel::csi`], bypassing the
/// snapshot and every scratch buffer. Mirrors the metric's formula exactly.
fn direct_snr_db(sim: &LinkSimulator, t_s: f64, weights: &BeamWeights) -> f64 {
    let ch = sim.dynamic.channel_at(t_s);
    if ch.paths.is_empty() {
        return -60.0;
    }
    let half = sim.sounder.grid.occupied_bw_hz() / 2.0;
    let freqs: Vec<f64> = (0..33)
        .map(|i| -half + 2.0 * half * i as f64 / 32.0)
        .collect();
    let csi = ch.csi(&sim.geom, weights, &sim.rx, &freqs);
    let mean_pow: f64 = csi.iter().map(|v| v.norm_sqr()).sum::<f64>() / csi.len() as f64;
    let tx_mw = mw_from_dbm(sim.sounder.budget.tx_power_dbm);
    let per_sc = tx_mw / sim.sounder.grid.n_subcarriers as f64;
    let dist_m = ch
        .paths
        .iter()
        .map(|p| p.tof_ns)
        .fold(f64::INFINITY, f64::min)
        * 1e-9
        * SPEED_OF_LIGHT;
    let atmo = pow_from_db(-sim.sounder.budget.atmospheric_absorption_db(dist_m));
    let noise = sim.sounder.noise_power_mw();
    db_from_pow((mean_pow * per_sc * atmo / noise).max(1e-6)).max(-60.0)
}

fn geometries() -> [ArrayGeometry; 2] {
    [ArrayGeometry::ula(16), ArrayGeometry::paper_8x8()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One query: snapshot-mediated SNR equals the direct recomputation,
    /// bit for bit, on both array geometries.
    #[test]
    fn snapshot_snr_matches_direct_query(
        t in 0.0..2.0f64,
        angle in -55.0..55.0f64,
    ) {
        for geom in geometries() {
            let w = single_beam(&geom, angle);
            let mut sim = walker_sim(geom);
            sim.wait(t);
            let got = sim.true_snr_db(&w);
            let want = direct_snr_db(&sim, t, &w);
            prop_assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "snapshot {} vs direct {} at t={} angle={}",
                got, want, t, angle
            );
        }
    }

    /// Repeated and interleaved queries: reusing a still-valid snapshot,
    /// then invalidating it by advancing time, never changes a bit. This
    /// exercises the rebuild/reuse branch pair plus the steering-row and
    /// phase-table caches across consecutive instants.
    #[test]
    fn snapshot_reuse_and_rebuild_stay_coherent(
        t0 in 0.0..1.0f64,
        dt in 1e-6..0.5f64,
        a0 in -55.0..55.0f64,
        a1 in -55.0..55.0f64,
    ) {
        for geom in geometries() {
            let w0 = single_beam(&geom, a0);
            let w1 = single_beam(&geom, a1);
            let mut sim = walker_sim(geom);
            sim.wait(t0);
            // Two reads at the same instant: the second reuses the snapshot.
            let first = sim.true_snr_db(&w0);
            let again = sim.true_snr_db(&w0);
            prop_assert_eq!(first.to_bits(), again.to_bits());
            prop_assert_eq!(first.to_bits(), direct_snr_db(&sim, t0, &w0).to_bits());
            // Different weights against the same frozen channel.
            let cross = sim.true_snr_db(&w1);
            prop_assert_eq!(cross.to_bits(), direct_snr_db(&sim, t0, &w1).to_bits());
            // Advance time: the snapshot must rebuild, not serve stale state.
            sim.wait(dt);
            let later = sim.true_snr_db(&w1);
            prop_assert_eq!(later.to_bits(), direct_snr_db(&sim, t0 + dt, &w1).to_bits());
        }
    }
}
