//! Fleet digest determinism: for random small fleets, the fleet digest is
//! bit-identical across worker/shard counts (1, 2, and the machine's
//! available parallelism) and across a kill + resume through the
//! crash-consistent journal — parallelism and crash recovery change
//! wall-clock, never results.

use mmwave_sim::fleet::{run_fleet, FleetConfig};
use proptest::prelude::*;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_journal(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "mmwave-fleet-{tag}-{}-{}.jsonl",
        std::process::id(),
        NONCE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn cfg(scenario: &str, n_ues: u32, seed: u64, threads: usize, shards: usize) -> FleetConfig {
    FleetConfig {
        threads,
        shards,
        ..FleetConfig::new(scenario, "single-beam-reactive", n_ues, seed)
    }
}

fn arb_scenario() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("translation-1s"), Just("mobile-blockage")]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Worker and shard counts are batching knobs only: 1 worker, 2
    /// workers, and every available core produce the same fleet digest,
    /// as do mismatched shard counts.
    #[test]
    fn digest_is_invariant_to_worker_and_shard_count(
        scenario in arb_scenario(),
        n_ues in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let reference = run_fleet(&cfg(scenario, n_ues, seed, 1, 1)).expect("fleet runs");
        for (threads, shards) in [(2, 2), (avail, avail), (2, n_ues as usize + 1)] {
            let r = run_fleet(&cfg(scenario, n_ues, seed, threads, shards)).expect("fleet runs");
            prop_assert_eq!(
                reference.digest, r.digest,
                "digest must not depend on threads={}/shards={}", threads, shards
            );
            prop_assert_eq!(reference.outcomes.len(), r.outcomes.len());
        }
    }

    /// A fleet killed mid-flight resumes from its journal into exactly
    /// the missing members, and the resumed fleet's digest is
    /// bit-identical to an uninterrupted run — even with a torn trailing
    /// journal line from the crash.
    #[test]
    fn kill_and_resume_reproduces_the_uninterrupted_digest(
        scenario in arb_scenario(),
        n_ues in 2u32..5,
        seed in 0u64..1_000,
    ) {
        let uninterrupted = run_fleet(&cfg(scenario, n_ues, seed, 1, 1)).expect("fleet runs");

        // A completed journaled run gives us authentic journal lines to
        // truncate into a "killed mid-flight" state.
        let journal = temp_journal("resume");
        let mut full = cfg(scenario, n_ues, seed, 2, 2);
        full.journal = Some(journal.clone());
        let complete = run_fleet(&full).expect("journaled fleet runs");
        prop_assert_eq!(complete.digest, uninterrupted.digest);

        // Keep only the first per-UE line (drop the rest and the
        // aggregate), then append a torn half-line as a crash would.
        let text = std::fs::read_to_string(&journal).expect("journal exists");
        let keep: Vec<&str> = text
            .lines()
            .filter(|l| l.contains(":ue"))
            .take(1)
            .collect();
        let kept = keep.len();
        let mut body = keep.join("\n");
        body.push('\n');
        std::fs::write(&journal, body).expect("truncate journal");
        {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&journal)
                .expect("journal exists");
            f.write_all(b"{\"scenario\":\"fleet:trunc").expect("torn line");
        }

        let resumed = run_fleet(&full).expect("resumed fleet runs");
        prop_assert_eq!(
            resumed.digest, uninterrupted.digest,
            "resume must reproduce the uninterrupted fleet digest"
        );
        prop_assert_eq!(resumed.resumed(), kept, "exactly the journaled members resume");
        let _ = std::fs::remove_file(&journal);
    }
}
