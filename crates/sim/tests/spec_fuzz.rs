//! Fuzzer acceptance: a small all-oracles-green run, and the planted
//! wedge-bug loop — the deliberately-broken oracle catches a failure,
//! shrinks it, and the shrunk counterexample's journal line replays
//! bit-identically.

use mmwave_sim::campaign::{replay_cell, JournalEntry};
use mmwave_sim::fuzz::{check_spec, run_fuzz, OracleOptions};
use mmwave_sim::{ScenarioSpec, WorldSpec};

#[test]
fn small_fuzz_run_is_all_oracles_green() {
    let report = run_fuzz("ci-smoke-small", 4, &OracleOptions::default());
    assert_eq!(report.cases_run, 4);
    assert_eq!(report.corpus.len(), 4);
    if let Some(cx) = &report.counterexample {
        panic!(
            "oracle {} fired on {}: {}",
            cx.failure.oracle,
            cx.spec.spec_string(),
            cx.failure.detail
        );
    }
}

#[test]
fn curated_clean_spec_passes_all_oracles() {
    let spec = ScenarioSpec::single(WorldSpec::StaticWalker, "mmreliable", 11);
    let (digest, reliability) = check_spec(&spec, &OracleOptions::default())
        .unwrap_or_else(|f| panic!("oracle {} fired: {}", f.oracle, f.detail));
    assert_ne!(digest, 0);
    assert!((0.0..=1.0).contains(&reliability));
}

#[test]
fn injected_wedge_bug_is_caught_shrunk_and_replays_bit_identically() {
    let opts = OracleOptions {
        inject_wedge: true,
        fleet_invariance: false,
    };
    let report = run_fuzz("wedge-acceptance", 8, &opts);
    let cx = report
        .counterexample
        .as_ref()
        .expect("the planted wedge bug must produce a counterexample");
    assert_eq!(cx.failure.oracle, "lifecycle-wedge");

    // Shrinking only simplifies: the minimal spec is no larger than the
    // original, still valid, and still fails the same oracle.
    assert!(cx.spec.spec_string().len() <= cx.original.spec_string().len());
    cx.spec.validate().expect("shrunk spec validates");
    let refail = check_spec(&cx.spec, &opts).expect_err("shrunk spec still fails");
    assert_eq!(refail.oracle, "lifecycle-wedge");

    // The counterexample journal line is a first-class journal entry:
    // parses back losslessly and carries the spec as its cell identity.
    let line = cx.entry.to_json();
    let parsed = JournalEntry::parse(&line).expect("counterexample line parses");
    assert_eq!(parsed.key(), cx.entry.key());
    assert_eq!(parsed.digest, cx.entry.digest);
    assert_eq!(parsed.status, "ok", "the wedged run itself completed");
    assert!(parsed.message.contains("fuzz:lifecycle-wedge"));
    assert_eq!(
        ScenarioSpec::parse_spec(&parsed.key().id()).expect("cell id is a spec"),
        cx.spec
    );

    // And it replays bit-identically: the same digest the oracle run saw.
    let (_, digest) = replay_cell(&parsed).expect("counterexample replays");
    assert_eq!(
        digest, parsed.digest,
        "replay of the counterexample must be bit-identical"
    );
}
