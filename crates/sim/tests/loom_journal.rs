//! Loom model test for the journal's tmp+rename commit protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI `static-analysis`
//! job). The vendored `loom` is an offline schedule-stress shim (see
//! `vendor/loom/src/lib.rs`): the model closure runs many times with
//! deterministic yield jitter rather than exhaustive DPOR.
//!
//! The protocol under test is [`mmwave_sim::campaign::write_lines_atomic`]
//! — the journal's only commit path (PR 3): every append rewrites the
//! full line set to `<path>.tmp`, then `rename(2)`s over the journal.
//! The crash-consistency and resume story rests on one claim: **a
//! concurrent (or post-crash) reader can only ever observe a
//! whole-line prefix of the writer's history** — never a torn line, never
//! lines out of order, never a later state followed by an earlier one
//! within a single read. The model drives a writer thread through a
//! sequence of appends while a reader thread reads the journal as fast
//! as the scheduler lets it, and asserts exactly that.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::Arc;
use mmwave_sim::campaign::write_lines_atomic;
use std::path::PathBuf;

/// A fresh journal path per model iteration so no state leaks between
/// iterations (the iteration index is deterministic; no wall clock).
fn journal_path() -> PathBuf {
    std::env::temp_dir().join(format!(
        "loom-journal-{}-{}.jsonl",
        std::process::id(),
        loom::current_iteration()
    ))
}

const APPENDS: usize = 6;

fn expected_line(k: usize) -> String {
    // Distinct lengths exercise "shrinking tail" detection: a torn write
    // of entry k over entry k-1 could not be confused with either.
    format!("entry-{k}:{}", "x".repeat(k * 3))
}

#[test]
fn reader_only_ever_observes_whole_line_prefixes() {
    loom::model(|| {
        let path = journal_path();
        let _ = std::fs::remove_file(&path);
        let done = Arc::new(AtomicBool::new(false));
        let done_w = done.clone();

        let wpath = path.clone();
        let writer = loom::thread::spawn(move || {
            let mut lines: Vec<String> = Vec::new();
            for k in 1..=APPENDS {
                lines.push(expected_line(k));
                write_lines_atomic(&wpath, &lines).expect("commit must succeed");
                loom::hint::yield_now_for(k);
            }
            done_w.store(true, Ordering::Release);
        });

        let rpath = path.clone();
        let reader = loom::thread::spawn(move || {
            let mut last_len = 0usize;
            let mut observations = 0usize;
            loop {
                let finished = done.load(Ordering::Acquire);
                match std::fs::read_to_string(&rpath) {
                    Ok(body) => {
                        observations += 1;
                        // Whole lines only: empty, or newline-terminated.
                        assert!(
                            body.is_empty() || body.ends_with('\n'),
                            "torn tail observed: {body:?}"
                        );
                        let got: Vec<&str> = body.lines().collect();
                        assert!(
                            got.len() <= APPENDS,
                            "more lines than ever written: {got:?}"
                        );
                        for (i, line) in got.iter().enumerate() {
                            assert_eq!(
                                *line,
                                expected_line(i + 1),
                                "line {i} is not the writer's line — torn or reordered"
                            );
                        }
                        // Monotone within this reader: the journal never
                        // goes backwards.
                        assert!(
                            got.len() >= last_len,
                            "journal shrank from {last_len} to {} lines",
                            got.len()
                        );
                        last_len = got.len();
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        // Not created yet; only legal before the first
                        // commit became visible.
                        assert_eq!(last_len, 0, "journal vanished after a commit");
                    }
                    Err(e) => panic!("unexpected read error: {e}"),
                }
                if finished {
                    break;
                }
                loom::thread::yield_now();
            }
            (observations, last_len)
        });

        writer.join().unwrap();
        let (_observations, final_len) = reader.join().unwrap();
        // The reader's final read happened after the writer finished (it
        // re-checks `done` before reading), so it must see everything.
        assert_eq!(final_len, APPENDS, "final journal state incomplete");
        let _ = std::fs::remove_file(&path);
    });
}

/// After any number of commits, a fresh reader (the resume path) sees the
/// exact full history — the property `resume_campaign` relies on.
#[test]
fn post_crash_reader_sees_exact_history() {
    loom::model(|| {
        let path = journal_path();
        let _ = std::fs::remove_file(&path);
        let mut lines: Vec<String> = Vec::new();
        // Stop the writer at an iteration-dependent point: every prefix
        // length gets modeled across the run.
        let stop_after = 1 + loom::current_iteration() % APPENDS;
        for k in 1..=stop_after {
            lines.push(expected_line(k));
            write_lines_atomic(&path, &lines).expect("commit must succeed");
        }
        let body = std::fs::read_to_string(&path).expect("journal exists after first commit");
        let got: Vec<&str> = body.lines().collect();
        assert_eq!(got.len(), stop_after);
        for (i, line) in got.iter().enumerate() {
            assert_eq!(*line, expected_line(i + 1));
        }
        // No stray tmp file left behind by a completed commit sequence.
        assert!(
            !path.with_extension("jsonl.tmp").exists(),
            "tmp file survived a completed commit"
        );
        let _ = std::fs::remove_file(&path);
    });
}
