//! Spec round-trip guarantees: every curated constructor, expressed as a
//! [`ScenarioSpec`], produces a bit-identical run fingerprint to the
//! constructor-built scenario, and spec strings parse back losslessly.

use mmwave_sim::campaign::{build_strategy, replay_cell};
use mmwave_sim::scenario::{self, Scenario};
use mmwave_sim::spec::{curated_worlds, FleetMixSpec, MixGroup};
use mmwave_sim::{FaultSchedule, ImpairmentConfig, ScenarioSpec, WorldSpec};
use proptest::test_runner::TestRng;

const SEED: u64 = 7;
const STRATEGY: &str = "single-beam-reactive";

/// The constructor a curated world stands in for, called directly — the
/// pre-spec path specs must reproduce bit for bit.
fn constructor_scenario(world: &WorldSpec, seed: u64) -> Scenario {
    match world {
        WorldSpec::StaticWalker => scenario::static_walker(),
        WorldSpec::MobileBlockage => scenario::mobile_blockage(seed),
        WorldSpec::Translation1s => scenario::translation_1s(),
        WorldSpec::GnbRotation { rate_deg_s } => scenario::gnb_rotation(*rate_deg_s),
        WorldSpec::RotationBlockage => scenario::rotation_blockage(seed),
        WorldSpec::MixedMobility => scenario::mixed_mobility_blockage(seed),
        WorldSpec::Outdoor { dist_m } => scenario::outdoor(*dist_m, seed),
        WorldSpec::NaturalMotion => scenario::natural_motion(seed),
        WorldSpec::AppendixB { sixty_ghz } => scenario::appendix_b(*sixty_ghz),
        WorldSpec::Custom(_) => unreachable!("curated worlds are not custom"),
    }
}

fn run_digest(sc: &Scenario, seed: u64) -> u64 {
    let mut strategy = build_strategy(STRATEGY).expect("known strategy");
    sc.simulator(seed)
        .run_with_warmup(
            strategy.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        )
        .digest()
}

#[test]
fn every_curated_world_matches_its_constructor_bit_for_bit() {
    for world in curated_worlds() {
        let direct = run_digest(&constructor_scenario(&world, SEED), SEED);
        let spec = ScenarioSpec::single(world.clone(), STRATEGY, SEED);
        spec.validate().expect("curated spec validates");

        // Spec-built scenario, run directly.
        let built = spec.to_scenario().expect("curated spec builds");
        assert_eq!(
            run_digest(&built, SEED),
            direct,
            "spec-built scenario diverged from constructor for {}",
            world.id()
        );

        // Full journal path: the spec's cell id through the campaign
        // registry, exactly as `replay` would execute it.
        let (_, replayed) = replay_cell(&spec.journal_entry(0, 0.0, ""))
            .unwrap_or_else(|f| panic!("replay of {} failed: {}", world.id(), f.message));
        assert_eq!(
            replayed,
            direct,
            "journal replay diverged from constructor for {}",
            world.id()
        );
    }
}

#[test]
fn curated_spec_strings_parse_back_losslessly() {
    for world in curated_worlds() {
        let spec = ScenarioSpec::single(world, STRATEGY, SEED);
        let s = spec.spec_string();
        let back = ScenarioSpec::parse_spec(&s).expect("curated spec string parses");
        assert_eq!(back, spec, "round-trip mismatch for {s}");
    }
}

#[test]
fn random_specs_parse_back_losslessly() {
    // Property test over the fuzzer's own generator: canonical spec
    // strings are a lossless encoding of the spec value.
    use proptest::strategy::Strategy;
    let strategy = mmwave_sim::fuzz::arb_spec();
    let mut rng = TestRng::from_name("spec-roundtrip-prop");
    for _ in 0..128 {
        let spec = strategy.new_value(&mut rng);
        let s = spec.spec_string();
        let back = ScenarioSpec::parse_spec(&s)
            .unwrap_or_else(|e| panic!("generated spec string {s:?} failed to parse: {e}"));
        assert_eq!(back, spec, "round-trip mismatch for {s}");
    }
}

#[test]
fn faulted_and_fleet_specs_round_trip_through_journal_entries() {
    let mut fault = FaultSchedule::none();
    fault.seed = 9;
    fault.stale_prob = 0.25;
    let mut spec = ScenarioSpec::single(WorldSpec::StaticWalker, "mmreliable", 41);
    spec.fault = fault.clone();
    spec.impairment = ImpairmentConfig::mild(3);
    let entry = spec.journal_entry(0xdead_beef, 0.5, "note");
    let parsed =
        mmwave_sim::campaign::JournalEntry::parse(&entry.to_json()).expect("journal line parses");
    assert_eq!(
        ScenarioSpec::parse_spec(&parsed.key().id()).expect("key parses"),
        spec
    );

    let fleet = ScenarioSpec {
        fleet: Some(FleetMixSpec {
            n_ues: 3,
            groups: vec![MixGroup {
                fault,
                impairment: ImpairmentConfig::mild(3),
            }],
        }),
        ..ScenarioSpec::single(WorldSpec::StaticWalker, "mmreliable", 41)
    };
    fleet.validate().expect("fleet spec validates");
    let id = fleet.spec_string();
    assert_eq!(
        ScenarioSpec::parse_spec(&id).expect("fleet spec id parses"),
        fleet,
        "fleet round-trip mismatch for {id}"
    );
}
