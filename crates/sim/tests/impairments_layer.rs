//! The hardware-impairment layer's end-to-end contracts: an all-off
//! configuration is bit-identical to the bare front end (property-tested
//! across scenarios and seeds), enabled impairments degrade the link
//! without wedging the lifecycle machine, a compression-driven SNR ceiling
//! exhausts the retry budget into the wide-beam fallback instead of a
//! retry storm, and phase-noise ripple straddling the outage threshold
//! does not flap Steady↔Outage.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::linkstate::{
    is_legal_transition, LifecycleConfig, LinkLifecycle, LinkSignal, LinkState, LinkStateKind,
    TransitionCause,
};
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_dsp::phase_noise::WienerPhase;
use mmwave_dsp::rng::Rng64;
use mmwave_sim::impairments::ImpairedFrontEnd;
use mmwave_sim::metrics::RunResult;
use mmwave_sim::scenario::{self, Scenario};
use mmwave_sim::ImpairmentConfig;
use proptest::prelude::*;

fn mmreliable() -> Box<dyn BeamStrategy> {
    Box::new(MmReliableStrategy::new(MmReliableController::new(
        MmReliableConfig::paper_default(),
    )))
}

fn run(sc: &Scenario, seed: u64) -> RunResult {
    let mut sim = sc.simulator(seed);
    let mut s = mmreliable();
    sim.run_with_warmup(
        s.as_mut(),
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    )
}

fn run_impaired(sc: &Scenario, seed: u64, cfg: ImpairmentConfig) -> RunResult {
    let mut fe = ImpairedFrontEnd::new(sc.simulator(seed), cfg).expect("valid impairment config");
    let mut s = mmreliable();
    fe.run_with_warmup(
        s.as_mut(),
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    )
}

#[test]
fn inert_wrapper_is_bit_identical_full_run() {
    // The tentpole contract, at full-run granularity: wrapping the
    // simulator in an all-off impairment config must not perturb a single
    // sample or event.
    let sc = scenario::static_walker();
    let plain = run(&sc, 11);
    let wrapped = run_impaired(&sc, 11, ImpairmentConfig::none());
    assert_eq!(plain.samples.len(), wrapped.samples.len());
    for (a, b) in plain.samples.iter().zip(&wrapped.samples) {
        assert_eq!(a.t_s, b.t_s);
        assert_eq!(a.dur_s, b.dur_s);
        assert_eq!(a.probing, b.probing);
        // NaN marks probing slots, so compare bits, not values.
        assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits());
    }
    assert_eq!(plain.probes, wrapped.probes);
    assert_eq!(plain.events, wrapped.events);
    assert_eq!(wrapped.impairments().count(), 0);
    assert_eq!(plain.digest(), wrapped.digest());
}

/// A short scenario for the property below: full library scenarios run
/// seconds of simulated time each; the bit-identity property holds per
/// slot, so a trimmed run exercises it just as hard.
fn short_scenario(which: u8) -> Scenario {
    let mut sc = match which % 3 {
        0 => scenario::static_walker(),
        1 => scenario::mobile_blockage(5),
        _ => scenario::translation_1s(),
    };
    sc.duration_s = 0.3;
    sc.warmup_s = sc.warmup_s.min(0.1);
    sc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any all-disabled configuration — whatever its seed — leaves the run
    /// digest untouched on any scenario and simulator seed.
    #[test]
    fn random_inert_configs_preserve_digests(
        cfg_seed in 0u64..u64::MAX,
        sim_seed in 0u64..1000,
        which in 0u8..3,
    ) {
        let sc = short_scenario(which);
        let mut cfg = ImpairmentConfig::none();
        cfg.seed = cfg_seed;
        prop_assert!(cfg.is_inert());
        let plain = run(&sc, sim_seed);
        let wrapped = run_impaired(&sc, sim_seed, cfg);
        prop_assert_eq!(
            plain.digest(),
            wrapped.digest(),
            "inert impairment wrapper must be bit-identical (scenario {}, seed {})",
            sc.name,
            sim_seed
        );
    }
}

#[test]
fn severity_orders_link_quality_and_annotates_runs() {
    // none ≥ mild ≥ severe in mean SNR, every logged transition legal, and
    // the impaired runs carry stage annotations in their event stream.
    let sc = scenario::static_walker();
    let clean = run(&sc, 17);
    let mild = run_impaired(&sc, 17, ImpairmentConfig::mild(17));
    let severe = run_impaired(&sc, 17, ImpairmentConfig::severe(17));
    // Impaired probes shift retrain timing, so single-seed comparisons
    // carry a couple of dB of alignment luck; mild must stay in the clean
    // run's neighbourhood while severe must fall clearly below both.
    assert!(
        (mild.mean_snr_db() - clean.mean_snr_db()).abs() < 3.0,
        "mild impairments must stay near the clean link: {} vs {}",
        mild.mean_snr_db(),
        clean.mean_snr_db()
    );
    assert!(
        severe.mean_snr_db() < clean.mean_snr_db() - 2.0
            && severe.mean_snr_db() < mild.mean_snr_db() - 2.0,
        "severe must cost real SNR: {} vs clean {} / mild {}",
        severe.mean_snr_db(),
        clean.mean_snr_db(),
        mild.mean_snr_db()
    );
    assert!(
        mild.impairments().count() > 0,
        "enabled stages must be annotated"
    );
    for r in [&mild, &severe] {
        for tr in r.transitions() {
            assert!(
                is_legal_transition(tr.from.kind(), tr.to.kind()),
                "illegal logged transition {:?} -> {:?}",
                tr.from,
                tr.to
            );
        }
    }
    // Severe hardware is allowed to hurt, but the lifecycle must keep the
    // link alive rather than wedge in a scan loop.
    assert!(
        severe.reliability() > 0.2,
        "severe impairments must degrade, not kill: reliability {}",
        severe.reliability()
    );
    let rounds = (sc.duration_s / sc.tick_period_s).ceil() as usize;
    let retrains = severe.retrain_attempts();
    assert!(
        retrains <= rounds / 4,
        "retry storm: {retrains} retrains over {rounds} maintenance rounds"
    );
}

fn snr_report(snr_db: f64, ref_db: f64) -> LinkSignal {
    LinkSignal::SnrReport {
        snr_db,
        ref_db,
        unexplained_drop: false,
    }
}

#[test]
fn compression_ceiling_exhausts_retries_into_fallback_without_storm() {
    // A PA-compression SNR ceiling looks like this to the lifecycle: every
    // round measures well below reference but above outage, and re-training
    // cannot fix it. The machine must reach Degraded, spend its bounded
    // retry budget, engage the wide-beam fallback — and then stop burning
    // airtime on scans.
    let cfg = LifecycleConfig::default();
    let budget = cfg.max_retrain_attempts;
    let mut lc = LinkLifecycle::new(cfg);
    lc.apply(
        LinkSignal::EstablishResult {
            ok: true,
            snr_db: 24.0,
        },
        0.0,
    );
    let mut t = 0.0;
    let mut recovering_entries = 0u32;
    // 400 maintenance rounds at 20 ms under a 12 dB ceiling (ref 24).
    for _ in 0..400 {
        t += 0.02;
        lc.apply(snr_report(12.0, 24.0), t);
        if let LinkState::Recovering { .. } = lc.state() {
            recovering_entries += 1;
            // The ceiling is hardware: the re-train scan cannot clear it.
            lc.apply(
                LinkSignal::EstablishResult {
                    ok: false,
                    snr_db: f64::NEG_INFINITY,
                },
                t,
            );
        }
    }
    let log = lc.log();
    assert!(
        log.iter()
            .any(|tr| tr.cause == TransitionCause::DegradationPersisted),
        "persistent ceiling must reach Degraded"
    );
    assert!(
        log.iter()
            .any(|tr| tr.cause == TransitionCause::RetryBudgetExhausted),
        "the retry budget must exhaust under a hardware ceiling"
    );
    assert!(lc.fallback_active(), "wide-beam fallback must engage");
    // After exhaustion the machine keeps probing for recovery, but paced
    // by the backoff cap — nowhere near one scan per maintenance round.
    // 400 rounds span 8 s; at backoff_max pacing that is ~20 attempts plus
    // the initial budget.
    let cap = budget + (8.0 / LifecycleConfig::default().backoff_max_s).ceil() as u32 + 2;
    assert!(
        recovering_entries >= budget,
        "the budget itself must be spent, got {recovering_entries}"
    );
    assert!(
        recovering_entries <= cap,
        "retry storm: {recovering_entries} scan attempts (pacing cap {cap})"
    );
    assert!(
        matches!(
            lc.state().kind(),
            LinkStateKind::Degraded | LinkStateKind::Recovering
        ),
        "fallback holds below Steady until a re-train actually succeeds"
    );
    for tr in log {
        assert!(is_legal_transition(tr.from.kind(), tr.to.kind()));
    }
}

#[test]
fn phase_noise_ripple_at_outage_threshold_does_not_flap() {
    // Phase-noise ICI makes the measured SNR ripple. Sitting just above
    // the 6 dB outage threshold but below the 8 dB exit hysteresis, the
    // machine must collapse once and hold — not oscillate Steady↔Outage
    // with every crossing.
    let cfg = LifecycleConfig::default();
    let mut lc = LinkLifecycle::new(cfg);
    lc.apply(
        LinkSignal::EstablishResult {
            ok: true,
            snr_db: 24.0,
        },
        0.0,
    );
    // A seeded Wiener walk supplies the ripple shape: ±1.5 dB around
    // 6.3 dB crosses 6.0 repeatedly yet never reaches the 8.0 exit.
    let mut pn = WienerPhase::new(3e3, 1e-3);
    let mut rng = Rng64::seed(42);
    let mut t = 0.0;
    for _ in 0..300 {
        t += 0.02;
        let ripple = 1.5 * (pn.advance(0.02, &mut rng) / std::f64::consts::PI);
        let snr = (6.3 + ripple).min(7.9);
        lc.apply(snr_report(snr, 24.0), t);
        if let LinkState::Recovering { .. } = lc.state() {
            lc.apply(
                LinkSignal::EstablishResult {
                    ok: false,
                    snr_db: f64::NEG_INFINITY,
                },
                t,
            );
        }
    }
    let log = lc.log();
    let collapses = log
        .iter()
        .filter(|tr| {
            tr.from.kind() == LinkStateKind::Steady && tr.to.kind() == LinkStateKind::Outage
        })
        .count();
    assert_eq!(collapses, 1, "threshold ripple must collapse exactly once");
    assert_eq!(
        log.iter()
            .filter(|tr| tr.to.kind() == LinkStateKind::Steady
                && tr.from.kind() != LinkStateKind::Acquiring)
            .count(),
        0,
        "nothing below the exit hysteresis may re-enter Steady"
    );
    for tr in log {
        assert!(
            is_legal_transition(tr.from.kind(), tr.to.kind()),
            "illegal transition {:?} -> {:?}",
            tr.from,
            tr.to
        );
    }
}

#[test]
fn erasure_takes_the_confirmed_outage_path() {
    // An erased probe measures below ERASURE_FLOOR_DB (−55); the
    // controller reports it as a *non-urgent* collapse, so the lifecycle
    // must take the confirmed-outage path (collapse now, re-train after
    // backoff) rather than the urgent same-round re-train reserved for
    // measured unexplained drops.
    let mut lc = LinkLifecycle::new(LifecycleConfig::default());
    lc.apply(
        LinkSignal::EstablishResult {
            ok: true,
            snr_db: 24.0,
        },
        0.0,
    );
    let tr = lc
        .apply(snr_report(-60.0, 24.0), 0.1)
        .expect("deep collapse transitions");
    assert_eq!(tr.cause, TransitionCause::SnrCollapsed);
    assert_eq!(
        tr.to.kind(),
        LinkStateKind::Outage,
        "an erasure must confirm through Outage, not bypass into Recovering"
    );
}
