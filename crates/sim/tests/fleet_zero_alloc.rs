//! Zero-allocation guarantee for steady-state fleet passes.
//!
//! Installs [`CountingAllocator`] as this binary's global allocator,
//! builds an 8-UE single-shard fleet, warms every per-lane scratch buffer
//! (sample vectors at their high-water capacity, the handler's intent
//! batch, the strategies' internal caches) with real passes, then drives
//! enough further passes to cover well over 1 000 steady-state UE-slots
//! and asserts the allocator was never called. This extends the DESIGN.md
//! §8 contract from one link to the whole cell: after warm-up, the fleet
//! runs entirely out of preallocated per-lane and per-shard state —
//! `SlotLoop` samples, the `IntentQueue`/`StateHandler` scratch swap, and
//! the fixed-bucket pass-latency histogram.
//!
//! Lives in its own integration-test binary so no concurrently running
//! test can touch the process-global counter mid-measurement.

use mmwave_channel::SharedSceneCache;
use mmwave_dsp::count_alloc::{allocation_count, CountingAllocator};
use mmwave_sim::campaign::build_scenario;
use mmwave_sim::fleet::{FleetConfig, FleetShard};
use std::sync::Arc;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_fleet_passes_do_not_allocate() {
    // 8 UEs of the static indoor link, one shard, driven inline (no
    // worker threads — sharding lives above this layer).
    let cfg = FleetConfig {
        threads: 1,
        shards: 1,
        ..FleetConfig::new("static-walker", "single-beam-reactive", 8, 42)
    };
    let sc = build_scenario(&cfg.scenario, cfg.seed).expect("registry scenario");
    let cache = Arc::new(SharedSceneCache::build(&sc.dynamic.scene));
    let ues: Vec<u32> = (0..cfg.n_ues).collect();
    let mut shard = FleetShard::new(&cfg, &ues, Some(&cache)).expect("shard builds");

    // Warm-up: 4 passes (100 ms) cover the 60 ms training window plus the
    // first post-establishment pass, so every lane has established,
    // trained its beam, and grown all scratch to steady state (first
    // intents, handler batch swap, transition log, strategy caches).
    for _ in 0..4 {
        assert!(!shard.step_pass(), "run must outlast the warm-up");
    }

    // Steady state: 8 passes × 8 UEs × 200 slots/UE/pass = 12 800
    // UE-slots, none of which may allocate. The window (100–300 ms) ends
    // before the walker first hits a path (0.25 s + 60 ms start delay),
    // so no lane retrains or transitions mid-measurement.
    let before = allocation_count();
    for _ in 0..8 {
        assert!(!shard.step_pass(), "run must outlast the measurement");
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state fleet passes allocated {delta} times over 8 passes"
    );

    // The passes did real work: every lane is live and established, and
    // the handler saw intents from each.
    let handler = shard.handler();
    for ue in 0..cfg.n_ues {
        let state = handler.state(mmreliable::UeId(ue)).expect("lane exists");
        assert!(state.is_established(), "ue{ue} not established: {state:?}");
        let m = handler.metrics(mmreliable::UeId(ue)).expect("lane exists");
        assert!(m.intents > 0, "ue{ue} submitted no intents");
    }
    assert!(shard.pass_latency().count() > 0);
}
