//! Failure injection: the system's behavior when the world degrades —
//! estimation noise, total blockage, vanished reflectors, and the CFO
//! impairment that motivated the paper's magnitude-only estimators.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::linkstate::is_legal_transition;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_channel::blockage::{BlockageEvent, BlockageProcess};
use mmwave_sim::faults::{FaultInjector, FaultKind, FaultSchedule, ProbeLossWindow};
use mmwave_sim::metrics::RunResult;
use mmwave_sim::scenario::{self, Scenario};

fn mmreliable() -> Box<dyn BeamStrategy> {
    Box::new(MmReliableStrategy::new(MmReliableController::new(
        MmReliableConfig::paper_default(),
    )))
}

fn run(sc: &Scenario, seed: u64) -> RunResult {
    let mut sim = sc.simulator(seed);
    let mut s = mmreliable();
    sim.run_with_warmup(
        s.as_mut(),
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    )
}

fn run_faulted(sc: &Scenario, seed: u64, sched: FaultSchedule) -> RunResult {
    let mut fe = FaultInjector::new(sc.simulator(seed), sched).expect("valid fault schedule");
    let mut s = mmreliable();
    fe.run_with_warmup(
        s.as_mut(),
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    )
}

#[test]
fn estimation_noise_degrades_gracefully() {
    // 10 dB worse estimation SNR: the link must get worse, not collapse.
    let clean = {
        let sc = scenario::translation_1s();
        run(&sc, 5)
    };
    let noisy = {
        let mut sc = scenario::translation_1s();
        sc.sounder.noise_boost = 10.0;
        run(&sc, 5)
    };
    assert!(noisy.mean_snr_db() <= clean.mean_snr_db() + 0.5);
    assert!(
        noisy.reliability() > 0.7,
        "graceful degradation expected, got reliability {}",
        noisy.reliability()
    );
    // At 100× noise the tracking loop is operating below its design point;
    // the link may thrash, but must not be permanently dead.
    let storm = {
        let mut sc = scenario::translation_1s();
        sc.sounder.noise_boost = 100.0;
        run(&sc, 5)
    };
    assert!(
        storm.reliability() > 0.2,
        "even at 100x noise some link time survives, got {}",
        storm.reliability()
    );
}

#[test]
fn cfo_impairment_does_not_break_the_estimators() {
    // The paper's design premise: probe phases are unreliable, magnitudes
    // are not. Disabling the impairment must not change behavior much.
    let with_cfo = {
        let sc = scenario::translation_1s();
        assert!(sc.sounder.cfo_impairment);
        run(&sc, 9)
    };
    let without_cfo = {
        let mut sc = scenario::translation_1s();
        sc.sounder.cfo_impairment = false;
        run(&sc, 9)
    };
    assert!(
        (with_cfo.mean_snr_db() - without_cfo.mean_snr_db()).abs() < 1.5,
        "CFO on {:.1} dB vs off {:.1} dB",
        with_cfo.mean_snr_db(),
        without_cfo.mean_snr_db()
    );
    assert!((with_cfo.reliability() - without_cfo.reliability()).abs() < 0.1);
}

#[test]
fn total_blockage_causes_outage_then_recovery() {
    // Every path blocked 35 dB for 200 ms: nothing can save the link
    // (the paper: "no solution can prevent link outage if all paths are
    // blocked") — but it must come back afterwards.
    let mut sc = scenario::static_walker();
    let events: Vec<BlockageEvent> = (0..4)
        .map(|i| BlockageEvent::nominal(i, 0.4, 35.0, 0.2))
        .collect();
    sc.dynamic.blockage = BlockageProcess::from_events(events);
    let r = run(&sc, 21);
    let series = r.snr_series();
    // In outage mid-event…
    let mid: Vec<f64> = series
        .iter()
        .filter(|(t, _)| (*t - sc.warmup_s - 0.5).abs() < 0.05)
        .map(|(_, s)| *s)
        .collect();
    assert!(
        mid.iter().copied().fold(f64::INFINITY, f64::min) < 6.0,
        "total blockage must cause outage"
    );
    // …healthy again at the end.
    let tail: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t > sc.warmup_s + 1.0)
        .map(|(_, s)| *s)
        .collect();
    let tail_mean = tail.iter().sum::<f64>() / tail.len() as f64;
    assert!(
        tail_mean > 14.0,
        "link should recover, tail mean {tail_mean} dB"
    );
}

#[test]
fn reflector_only_blockage_is_survivable() {
    // Blocking only the NLOS beams must barely dent the link.
    let mut sc = scenario::static_walker();
    sc.dynamic.blockage = BlockageProcess::from_events(vec![
        BlockageEvent::nominal(1, 0.3, 30.0, 0.3),
        BlockageEvent::nominal(2, 0.3, 30.0, 0.3),
    ]);
    let r = run(&sc, 33);
    assert!(
        r.reliability() > 0.95,
        "NLOS-only blockage: reliability {}",
        r.reliability()
    );
}

#[test]
fn repeated_blockage_events_each_handled() {
    // Three back-to-back LOS blockage events within one run.
    let mut sc = scenario::static_walker();
    sc.duration_s = 1.5;
    let mut events = Vec::new();
    for i in 0..3 {
        let start = 0.2 + 0.45 * i as f64;
        events.push(BlockageEvent::nominal(0, start, 30.0, 0.2));
        events.push(BlockageEvent::nominal(3, start, 30.0, 0.2));
    }
    sc.dynamic.blockage = BlockageProcess::from_events(events);
    let r = run(&sc, 44);
    assert!(
        r.reliability() > 0.85,
        "repeated blockage: reliability {}",
        r.reliability()
    );
}

#[test]
fn zero_fault_wrapper_is_bit_identical() {
    // Regression guard for the fault layer: wrapping the simulator in an
    // inert schedule must not perturb a single sample or event.
    let sc = scenario::static_walker();
    let plain = run(&sc, 11);
    let wrapped = run_faulted(&sc, 11, FaultSchedule::none());
    assert_eq!(plain.samples.len(), wrapped.samples.len());
    for (a, b) in plain.samples.iter().zip(&wrapped.samples) {
        assert_eq!(a.t_s, b.t_s);
        assert_eq!(a.dur_s, b.dur_s);
        assert_eq!(a.probing, b.probing);
        // NaN marks probing slots, so compare bits, not values.
        assert_eq!(a.snr_db.to_bits(), b.snr_db.to_bits());
    }
    assert_eq!(plain.probes, wrapped.probes);
    assert_eq!(
        plain.events, wrapped.events,
        "no fault events, same transitions"
    );
    assert_eq!(wrapped.faults().count(), 0);
}

#[test]
fn probe_loss_storm_degrades_gracefully() {
    // Every other probe lost for the entire run: maintenance quality halves
    // but the lifecycle's bounded retries must keep the link mostly up.
    let sc = scenario::static_walker();
    let mut sched = FaultSchedule::none();
    sched.seed = 77;
    sched.probe_loss = vec![ProbeLossWindow {
        start_s: 0.1,
        end_s: 10.0,
        loss_prob: 0.5,
    }];
    let r = run_faulted(&sc, 11, sched);
    assert!(
        r.reliability() > 0.7,
        "probe-loss storm: reliability {}",
        r.reliability()
    );
    assert!(r.faults().any(|f| f.kind == FaultKind::ProbeLost));
}

#[test]
fn two_failed_elements_cost_under_one_db() {
    // 2 of 64 elements dead: the paper-scale array must shrug it off.
    let mut sc = scenario::static_walker();
    sc.dynamic.blockage = BlockageProcess::none();
    let clean = run(&sc, 13);
    let mut sched = FaultSchedule::none();
    sched.failed_elements = vec![3, 17];
    let faulted = run_faulted(&sc, 13, sched);
    let loss = clean.mean_snr_db() - faulted.mean_snr_db();
    assert!(
        loss < 1.0,
        "2/64 element failure must cost < 1 dB, got {loss:.2} dB"
    );
    assert!(faulted.reliability() > 0.95);
    assert!(faulted
        .faults()
        .any(|f| matches!(f.kind, FaultKind::ElementFailed { .. })));
}

#[test]
fn faulted_static_walker_stays_reliable_with_bounded_retrains() {
    // The acceptance scenario: probe loss plus element failures on top of
    // the walker's double blockage. The link must stay > 0.8 reliable, the
    // event log must show the faults and every lifecycle transition, and
    // re-training must be bounded — not a hot loop of SSB scans.
    let sc = scenario::static_walker();
    let mut sched = FaultSchedule::none();
    sched.seed = 99;
    sched.probe_loss = vec![ProbeLossWindow {
        start_s: 0.1,
        end_s: 10.0,
        loss_prob: 0.25,
    }];
    sched.failed_elements = vec![5, 40];
    let r = run_faulted(&sc, 17, sched);
    assert!(
        r.reliability() > 0.8,
        "faulted static-walker: reliability {}",
        r.reliability()
    );
    assert!(r.faults().count() > 0, "faults must be logged");
    let transitions: Vec<_> = r.transitions().collect();
    assert!(
        !transitions.is_empty(),
        "lifecycle transitions must be logged"
    );
    for tr in &transitions {
        assert!(
            is_legal_transition(tr.from.kind(), tr.to.kind()),
            "illegal logged transition {:?} -> {:?}",
            tr.from,
            tr.to
        );
    }
    // Bounded recovery: the lifecycle caps retries per episode and paces
    // them with backoff. Two blockage hits + constant probe loss must not
    // produce more than a handful of full re-training scans.
    let retrains = r.retrain_attempts();
    assert!(
        retrains <= 12,
        "re-training must be bounded, got {retrains} attempts"
    );
}

#[test]
fn quantizer_failure_mode_two_bit_hardware_still_works() {
    let mut cfg = MmReliableConfig::paper_default();
    cfg.quantizer = mmwave_array::quantize::Quantizer::commercial_80211ad();
    let sc = scenario::static_walker();
    let mut sim = sc.simulator(55);
    let mut s = MmReliableStrategy::new(MmReliableController::new(cfg));
    let r = sim.run_with_warmup(
        &mut s,
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    );
    assert!(
        r.reliability() > 0.85,
        "2-bit hardware: reliability {}",
        r.reliability()
    );
}
