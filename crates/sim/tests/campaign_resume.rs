//! Journal crash-consistency: a campaign killed mid-flight — including a
//! torn trailing write — must resume into exactly the missing cells, and
//! the union of the two passes must be complete, deduplicated, and
//! bit-identical to an uninterrupted run.

use mmwave_baselines::single_reactive::{ReactiveConfig, SingleBeamReactive};
use mmwave_sim::campaign::{
    closure_jobs, load_journal, run_campaign, CampaignConfig, CellStatus, Job,
};
use mmwave_sim::scenario;
use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;

fn jobs(n: usize, base_seed: u64) -> Vec<Job> {
    closure_jobs(
        n,
        base_seed,
        "mobile-blockage",
        "single-beam-reactive",
        scenario::mobile_blockage,
        || Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
    )
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "mmwave-campaign-{tag}-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn killed_campaign_resumes_without_loss_or_duplication() {
    let journal = temp_journal("resume");
    let all = jobs(6, 300);
    let cfg = CampaignConfig {
        threads: 2,
        journal: Some(journal.clone()),
        ..CampaignConfig::default()
    };

    // Phase 1: the process "dies" after the first three cells...
    let report1 = run_campaign(&all[..3], &cfg).expect("phase 1");
    assert_eq!(report1.results().len(), 3);
    // ...mid-write: a torn half-line trails the journal.
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("journal exists");
        f.write_all(b"{\"scenario\":\"mobile-blo").expect("append");
    }

    // Phase 2: rerun the FULL campaign against the same journal.
    let report2 = run_campaign(&all, &cfg).expect("phase 2");
    assert_eq!(
        report2.resumed_count(),
        3,
        "phase-1 cells must resume, not rerun"
    );
    assert_eq!(
        report2.results().len(),
        3,
        "only the missing cells execute in phase 2"
    );

    // Union: every cell exactly once.
    let entries = load_journal(&journal).expect("readable journal");
    assert_eq!(entries.len(), all.len(), "zero lost cells");
    let mut ids: Vec<String> = entries.iter().map(|e| e.key().id()).collect();
    ids.sort();
    let deduped = ids.len();
    ids.dedup();
    assert_eq!(ids.len(), deduped, "zero duplicated cells");
    let mut want: Vec<String> = all.iter().map(|j| j.key.id()).collect();
    want.sort();
    assert_eq!(ids, want, "journal covers exactly the submitted grid");
    assert!(
        entries.iter().all(|e| e.status == "ok"),
        "every cell completed"
    );

    // Bit-identity: the interrupted-and-resumed union matches an
    // uninterrupted journal-less campaign digest for digest.
    let clean = run_campaign(&jobs(6, 300), &CampaignConfig::default()).expect("clean run");
    let clean_digests: HashMap<String, u64> = clean
        .outcomes
        .iter()
        .map(|o| match &o.status {
            CellStatus::Completed { digest, .. } => (o.key.id(), *digest),
            _ => panic!("clean campaign cell {} did not complete", o.key.id()),
        })
        .collect();
    for e in &entries {
        assert_eq!(
            e.digest,
            clean_digests[&e.key().id()],
            "cell {} diverged across kill/resume",
            e.key().id()
        );
    }
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn torn_trailing_line_is_tolerated_and_rewritten_clean() {
    let journal = temp_journal("torn");
    let all = jobs(2, 800);
    let cfg = CampaignConfig {
        threads: 1,
        journal: Some(journal.clone()),
        ..CampaignConfig::default()
    };
    run_campaign(&all[..1], &cfg).expect("seed the journal");
    {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("journal exists");
        f.write_all(b"{\"scenario\":\"half a lin").expect("append");
    }
    // The loader stops cleanly at the torn tail.
    assert_eq!(load_journal(&journal).expect("load").len(), 1);
    // Completing the campaign rewrites the journal whole: the torn residue
    // is gone and both cells parse.
    run_campaign(&all, &cfg).expect("complete");
    let entries = load_journal(&journal).expect("reload");
    assert_eq!(entries.len(), 2);
    let text = std::fs::read_to_string(&journal).expect("read");
    assert_eq!(
        text.lines().count(),
        2,
        "journal holds exactly one intact line per cell"
    );
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn journaled_failures_are_not_rerun() {
    let journal = temp_journal("failed");
    let mut all = jobs(2, 950);
    // Cell 0 is structurally broken: terminal validation failure.
    all[0] = Job::custom(all[0].key.clone(), |_| {
        Err("deliberately malformed cell".to_string())
    });
    let cfg = CampaignConfig {
        threads: 1,
        journal: Some(journal.clone()),
        ..CampaignConfig::default()
    };
    let report1 = run_campaign(&all, &cfg).expect("first pass");
    assert_eq!(report1.failures().len(), 1);
    // Second pass: the failure is resumed from its journal line — the
    // builder would fail again identically; replay, not rerun, is the tool
    // for investigating it.
    let report2 = run_campaign(&all, &cfg).expect("second pass");
    assert_eq!(
        report2.resumed_count(),
        2,
        "failures resume like completions"
    );
    assert_eq!(report2.results().len(), 0, "nothing re-executes");
    let entries = load_journal(&journal).expect("load");
    assert_eq!(entries.len(), 2);
    assert_eq!(
        entries.iter().filter(|e| e.status == "validation").count(),
        1
    );
    let _ = std::fs::remove_file(&journal);
}
