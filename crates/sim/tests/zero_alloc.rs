//! Zero-allocation guarantee for steady-state data slots.
//!
//! Installs [`CountingAllocator`] as this binary's global allocator, warms
//! every scratch buffer to its high-water mark with a real run, then drives
//! 1 000 steady-state data slots — the exact per-slot sequence of the run
//! loop (`observe_truth` → `weights_into` → `radiated_weights_into` →
//! `true_snr_db` → clock advance) — and asserts the allocator was never
//! called. This pins the tentpole property of DESIGN.md §8: after warm-up,
//! the data plane runs entirely out of [`SlotWorkspace`] and the run loop's
//! reusable weight scratch.
//!
//! Lives in its own integration-test binary so no concurrently running test
//! can touch the process-global counter mid-measurement.

use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::weights::BeamWeights;
use mmwave_baselines::strategy::BeamStrategy;
use mmwave_baselines::SingleBeamReactive;
use mmwave_channel::blockage::BlockageProcess;
use mmwave_channel::channel::UeReceiver;
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::mobility::{Pose, Trajectory};
use mmwave_dsp::count_alloc::{allocation_count, CountingAllocator};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::FC_28GHZ;
use mmwave_phy::chanest::ChannelSounder;
use mmwave_sim::simulator::{LinkSimulator, SimFrontEnd};

use mmreliable::frontend::LinkFrontEnd;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn static_sim(seed: u64) -> LinkSimulator {
    let dynamic = DynamicChannel::new(
        Scene::conference_room(FC_28GHZ),
        Trajectory::Static {
            pose: Pose {
                pos: v2(0.9, 7.0),
                facing_deg: 180.0,
            },
        },
        BlockageProcess::none(),
    );
    LinkSimulator::new(
        dynamic,
        ChannelSounder::paper_indoor(),
        ArrayGeometry::paper_8x8(),
        UeReceiver::Omni,
        Rng64::seed(seed),
    )
}

#[test]
fn steady_state_data_slots_do_not_allocate() {
    let mut sim = static_sim(11);
    let mut strategy = SingleBeamReactive::new(Default::default());
    // Warm-up: a real run trains the beam and grows every scratch buffer
    // (snapshot path/steering/phase caches, SNR comb + CSI scratch) to its
    // steady-state size.
    let _ = sim.run(&mut strategy, 0.05, 20e-3, "warmup");

    // The run loop's per-slot scratch, allocated once up front exactly as
    // `run_front_end` does.
    let n = sim.geom.num_elements();
    let mut w_data = BeamWeights::muted(n);
    let mut w_rad = BeamWeights::muted(n);
    let slot_s = sim.slot_s;
    // A few unmeasured slots settle lazily-sized buffers (first
    // `weights_into` into the fresh scratch, etc.).
    for _ in 0..8 {
        strategy.observe_truth(sim.channel_now());
        strategy.weights_into(&mut w_data);
        sim.radiated_weights_into(&w_data, &mut w_rad);
        let _ = sim.true_snr_db(&w_rad);
        sim.wait(slot_s);
    }

    let before = allocation_count();
    let mut acc = 0.0f64;
    for _ in 0..1000 {
        strategy.observe_truth(sim.channel_now());
        strategy.weights_into(&mut w_data);
        sim.radiated_weights_into(&w_data, &mut w_rad);
        acc += sim.true_snr_db(&w_rad);
        sim.wait(slot_s);
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "steady-state slots allocated {delta} times over 1000 slots"
    );
    // The loop did real work: a trained static link sits far above outage.
    assert!(acc / 1000.0 > 20.0, "mean snr {}", acc / 1000.0);
}

/// The impairment layer's hot-path contract: with every analog stage
/// enabled (PA, mismatch, coupling on the weight path; phase noise, LO
/// leakage, ADC on the probe path), the steady-state data-slot sequence
/// still never touches the allocator — the per-slot weight transform runs
/// out of the decorator's precomputed tables and a stack scratch buffer.
#[test]
fn impaired_steady_state_slots_do_not_allocate() {
    use mmwave_sim::impairments::{ImpairedFrontEnd, ImpairmentConfig};

    let mut fe = ImpairedFrontEnd::new(static_sim(11), ImpairmentConfig::moderate(3))
        .expect("valid impairment config");
    let mut strategy = SingleBeamReactive::new(Default::default());
    // Warm-up: train the beam and grow every scratch buffer, probe path
    // included, to its steady-state high-water mark.
    let _ = fe.run(&mut strategy, 0.05, 20e-3, "warmup");

    let n = fe.sim().geom.num_elements();
    let mut w_data = BeamWeights::muted(n);
    let mut w_rad = BeamWeights::muted(n);
    let slot_s = fe.sim().slot_s;
    for _ in 0..8 {
        strategy.observe_truth(fe.sim_mut().channel_now());
        strategy.weights_into(&mut w_data);
        fe.radiated_weights_into(&w_data, &mut w_rad);
        let _ = fe.sim_mut().true_snr_db(&w_rad);
        fe.sim_mut().wait(slot_s);
    }

    let before = allocation_count();
    let mut acc = 0.0f64;
    for _ in 0..1000 {
        strategy.observe_truth(fe.sim_mut().channel_now());
        strategy.weights_into(&mut w_data);
        fe.radiated_weights_into(&w_data, &mut w_rad);
        acc += fe.sim_mut().true_snr_db(&w_rad);
        fe.sim_mut().wait(slot_s);
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "impaired steady-state slots allocated {delta} times over 1000 slots"
    );
    // The loop did real work through the impaired weight path: a trained
    // static link still sits well above outage.
    assert!(acc / 1000.0 > 10.0, "mean snr {}", acc / 1000.0);
}

/// The telemetry layer's zero-overhead contract, half one: with a
/// [`NullSink`] tracer installed, the exact steady-state slot sequence
/// *plus* the run loop's per-slot telemetry calls (span begin/end into the
/// latency histogram, decimated slot offer) still never touches the
/// allocator. Histograms are fixed inline arrays and a discarded
/// [`SlotTrace`] is `Copy`, so instrumentation costs cycles, not heap.
#[cfg(feature = "telemetry")]
#[test]
fn null_sink_telemetry_does_not_allocate() {
    use mmwave_telemetry::{NullSink, SlotTrace, Stage, Tracer};

    let mut sim = static_sim(11);
    let mut strategy = SingleBeamReactive::new(Default::default());
    let _ = sim.run(&mut strategy, 0.05, 20e-3, "warmup");

    let tracer = Tracer::new(Box::new(NullSink), 1);
    let n = sim.geom.num_elements();
    let mut w_data = BeamWeights::muted(n);
    let mut w_rad = BeamWeights::muted(n);
    let slot_s = sim.slot_s;
    for _ in 0..8 {
        strategy.observe_truth(sim.channel_now());
        strategy.weights_into(&mut w_data);
        sim.radiated_weights_into(&w_data, &mut w_rad);
        let _ = sim.true_snr_db(&w_rad);
        sim.wait(slot_s);
    }

    let before = allocation_count();
    for slot in 0..1000u64 {
        let clock = tracer.begin();
        strategy.observe_truth(sim.channel_now());
        strategy.weights_into(&mut w_data);
        sim.radiated_weights_into(&w_data, &mut w_rad);
        let snr = sim.true_snr_db(&w_rad);
        tracer.end(clock, Stage::DataSlot, sim.now_s());
        tracer.slot(SlotTrace {
            slot,
            t_s: sim.now_s(),
            snr_db: snr,
            blockage_db: 0.0,
            probing: false,
            outage: snr < sim.outage_snr_db,
        });
        sim.wait(slot_s);
    }
    let delta = allocation_count() - before;
    assert_eq!(
        delta, 0,
        "NullSink-instrumented slots allocated {delta} times over 1000 slots"
    );
    // The instrumentation did real work: every span landed in the
    // histogram.
    assert_eq!(tracer.latency().stage(Stage::DataSlot).count, 1000);
}

/// Zero-overhead contract, half two: a [`NullSink`]-traced run is
/// bit-identical to an untraced one — same samples, same digest — while
/// still filling in the latency percentiles the untraced run leaves zero.
/// (`RunResult::latency` is wall-clock derived and deliberately excluded
/// from the digest.)
#[cfg(feature = "telemetry")]
#[test]
fn null_sink_run_is_bit_identical_to_untraced() {
    use mmreliable::config::MmReliableConfig;
    use mmreliable::controller::MmReliableController;
    use mmwave_baselines::strategy::MmReliableStrategy;
    use mmwave_telemetry::{NullSink, Tracer};

    let run = |traced: bool| {
        let mut sim = static_sim(23);
        if traced {
            sim.set_tracer(Tracer::new(Box::new(NullSink), 1));
        }
        let mut strategy =
            MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
        sim.run(&mut strategy, 0.2, 10e-3, "fingerprint")
    };
    let bare = run(false);
    let traced = run(true);
    assert_eq!(
        bare.digest(),
        traced.digest(),
        "NullSink tracing must not perturb the run"
    );
    assert_eq!(bare.samples.len(), traced.samples.len());
    assert!(
        traced.latency.tick().count > 0,
        "traced run reports tick latency percentiles"
    );
    assert_eq!(
        bare.latency.tick().count,
        0,
        "untraced run leaves latency all-zero"
    );
}
