//! OFDM loopback: prove the waveform path end-to-end.
//!
//! ```text
//! cargo run --release --example ofdm_loopback
//! ```
//!
//! Modulates random bits onto a CP-OFDM carrier (numerology 3, like the
//! paper's 400 MHz testbed waveform), passes the samples through a two-tap
//! multipath channel with AWGN, equalizes with one tap per subcarrier, and
//! reports EVM and bit errors per modulation order.

use mmwave_dsp::complex::Complex64;
use mmwave_dsp::rng::Rng64;
use mmwave_phy::grid::ResourceGrid;
use mmwave_phy::modulation::Modulation;
use mmwave_phy::numerology::Numerology;
use mmwave_phy::ofdm::{apply_fir_channel, evm, OfdmModem};

fn main() {
    let grid = ResourceGrid {
        numerology: Numerology::paper_mu3(),
        n_subcarriers: 600,
    };
    let modem = OfdmModem::new(grid);
    let mut rng = Rng64::seed(2024);

    // Two-tap multipath channel well inside the cyclic prefix.
    let taps = vec![
        Complex64::from_polar(1.0, 0.4),
        Complex64::from_polar(0.35, -1.9),
    ];
    let nfft = modem.grid.fft_size();
    let h_est: Vec<Complex64> = (0..grid.n_subcarriers)
        .map(|k| {
            let offset = k as i64 - (grid.n_subcarriers as i64) / 2;
            let bin = offset.rem_euclid(nfft as i64) as usize;
            taps.iter()
                .enumerate()
                .map(|(d, &t)| {
                    t * Complex64::cis(-2.0 * std::f64::consts::PI * (bin * d) as f64 / nfft as f64)
                })
                .sum()
        })
        .collect();

    println!(
        "{:>8}  {:>9}  {:>12}  {:>10}",
        "mod", "EVM", "bit errors", "bits"
    );
    for (m, snr_db) in [
        (Modulation::Qpsk, 12.0),
        (Modulation::Qam16, 18.0),
        (Modulation::Qam64, 25.0),
        (Modulation::Qam256, 32.0),
    ] {
        let n_symbols = 4;
        let n_bits = grid.n_subcarriers * n_symbols * m.bits_per_symbol();
        let bits: Vec<u8> = (0..n_bits).map(|_| rng.chance(0.5) as u8).collect();
        let syms = m.map_stream(&bits);
        let frame = modem.modulate(&syms, n_symbols);
        let sig_pow: f64 =
            frame.samples.iter().map(|v| v.norm_sqr()).sum::<f64>() / frame.samples.len() as f64;
        let noise = sig_pow / 10f64.powf(snr_db / 10.0);
        let rx_samples = apply_fir_channel(&frame.samples, &taps, noise, &mut rng);
        let rx_points = modem.demodulate(&rx_samples, n_symbols);
        let eq = modem.equalize(&rx_points, &h_est);
        let rx_bits = m.demap_stream(&eq);
        let errors = bits.iter().zip(&rx_bits).filter(|(a, b)| a != b).count();
        println!(
            "{:>8}  {:>8.1}%  {:>12}  {:>10}  (per-sample SNR {snr_db} dB)",
            format!("{m:?}"),
            100.0 * evm(&syms, &eq),
            errors,
            n_bits
        );
    }
    println!(
        "\n(two-tap multipath, one-tap equalization from perfect CSI; CP absorbs the delay spread)"
    );
}
