//! V2X outdoor scenario: long links beside a building, with blockers.
//!
//! ```text
//! cargo run --release --example v2x_outdoor
//! ```
//!
//! Vehicle-to-infrastructure links (the paper's other motivating
//! application) run 30–80 m with pedestrians and vehicles crossing the LOS.
//! This example sweeps link distance on the outdoor street scene (100 MHz
//! carrier, tinted-glass building facade as the reflector) and reports
//! reliability and throughput for mmReliable vs the reactive baseline.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::SingleBeamReactive;
use mmwave_phy::mcs::McsTable;
use mmwave_sim::runner::{run_many, Aggregate};
use mmwave_sim::scenario;

fn main() {
    let mcs = McsTable::nr_table();
    let runs = 6;
    println!(
        "{:>6}  {:>12}  {:>11}  {:>11}",
        "dist", "strategy", "reliability", "throughput"
    );
    for dist in [30.0, 50.0, 80.0] {
        for which in ["mmReliable", "reactive"] {
            let factory: Box<dyn Fn() -> Box<dyn BeamStrategy + Send> + Sync> = match which {
                "mmReliable" => Box::new(|| {
                    Box::new(MmReliableStrategy::new(MmReliableController::new(
                        MmReliableConfig::paper_default(),
                    )))
                }),
                _ => Box::new(|| Box::new(SingleBeamReactive::new(ReactiveConfig::default()))),
            };
            let results = run_many(
                runs,
                900 + dist as u64,
                runs,
                |seed| scenario::outdoor(dist, seed),
                factory.as_ref(),
            );
            let agg = Aggregate::from_runs(&results, &mcs).expect("non-empty run set");
            println!(
                "{:>4} m  {:>12}  {:>11.3}  {:>7.0} Mbps",
                dist,
                which,
                agg.mean_reliability(),
                agg.mean_throughput_bps() / 1e6
            );
        }
    }
    println!("\n(100 MHz outdoor carrier; the building facade reflection keeps mmReliable alive through LOS blockage)");
}
