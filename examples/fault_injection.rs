//! Fault injection: stress the link lifecycle with probe loss and dead
//! antenna elements, then read the transition/fault event log.
//!
//! ```text
//! cargo run --release --example fault_injection [loss_prob]
//! ```
//!
//! Wraps the standard static-walker blockage scenario in a
//! [`FaultInjector`]: a probe-loss storm erases a fraction of CSI reports
//! and two array elements are dead for the whole run. The controller's
//! lifecycle state machine has to ride through both — bounded re-train
//! scans, degraded-mode fallback, no panic — and every state transition
//! and injected fault lands in the run's event log.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::strategy::MmReliableStrategy;
use mmwave_sim::scenario;
use mmwave_sim::{FaultInjector, FaultSchedule, ProbeLossWindow};

fn main() {
    let loss_prob: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);

    let sc = scenario::static_walker();
    let schedule = FaultSchedule {
        probe_loss: vec![ProbeLossWindow {
            start_s: 0.1,
            end_s: sc.total_time_s(),
            loss_prob,
        }],
        failed_elements: vec![5, 40],
        ..FaultSchedule::none()
    };
    println!(
        "scenario {:?}: probe loss {:.0}% from t = 0.1 s, elements 5 and 40 dead",
        sc.name,
        100.0 * loss_prob
    );

    let mut fe = FaultInjector::new(sc.simulator(17), schedule)
        .unwrap_or_else(|e| panic!("valid fault schedule: {e}"));
    let mut strategy =
        MmReliableStrategy::new(MmReliableController::new(MmReliableConfig::paper_default()));
    let result = fe.run_with_warmup(
        &mut strategy,
        sc.duration_s,
        sc.tick_period_s,
        sc.name,
        sc.warmup_s,
    );

    println!(
        "\nreliability {:.4}, probing overhead {:.2}%, {} faults injected, {} re-train scans",
        result.reliability(),
        100.0 * result.probing_overhead(),
        result.faults().count(),
        result.retrain_attempts(),
    );

    println!("\nlifecycle transitions:");
    for tr in result.transitions() {
        println!(
            "  t = {:>6.3} s  {} -> {}  ({:?})",
            tr.t_s,
            tr.from.kind(),
            tr.to.kind(),
            tr.cause
        );
    }

    println!("\nfirst injected faults:");
    for f in result.faults().take(8) {
        println!("  t = {:>6.3} s  {}", f.t_s, f.kind);
    }
}
