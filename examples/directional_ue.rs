//! Directional UE (§4.4): two-sided beam maintenance under UE rotation.
//!
//! ```text
//! cargo run --release --example directional_ue
//! ```
//!
//! Long outdoor links need a directional UE. When the UE rotates, only the
//! UE-side gain changes (the gNB pattern is untouched), so the UE inverts
//! its own beam pattern to recover the rotation angle and realigns —
//! resolving the ± ambiguity exactly like the gNB tracker, with one
//! hypothesis measurement. This example closes that loop on a 30 m street
//! link while the gNB runs its normal mmReliable maintenance.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::frontend::LinkFrontEnd;
use mmreliable::ue::estimate_rotation_deg;
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_channel::blockage::BlockageProcess;
use mmwave_channel::channel::UeReceiver;
use mmwave_channel::dynamics::DynamicChannel;
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_channel::mobility::{Pose, Trajectory};
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, FC_28GHZ};
use mmwave_phy::chanest::ChannelSounder;
use mmwave_sim::LinkSimulator;

fn main() {
    // 30 m outdoor link; the UE rotates at 24°/s (VR-headset rate).
    let dynamic = DynamicChannel::new(
        Scene::outdoor_street(FC_28GHZ),
        Trajectory::Rotation {
            start: Pose {
                pos: v2(0.0, 30.0),
                facing_deg: 180.0,
            },
            rate_deg_s: 24.0,
        },
        BlockageProcess::none(),
    );
    let ue_geom = ArrayGeometry::ula(4);
    // The UE initially points straight at the gNB (AoA 0 in its own frame).
    let mut ue_beam_deg = 0.0;
    let mut sim = LinkSimulator::new(
        dynamic,
        ChannelSounder::paper_outdoor(),
        ArrayGeometry::paper_8x8(),
        UeReceiver::Array {
            geom: ue_geom,
            weights: single_beam(&ue_geom, 0.0),
        },
        Rng64::seed(2718),
    );

    // gNB side: plain mmReliable establishment + maintenance.
    let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
    ctl.establish(&mut sim);
    let w = ctl.current_weights();
    let baseline_db = db_from_pow(sim.probe(&w).mean_power_mw().max(1e-20));

    println!(
        "{:>6}  {:>10}  {:>10}  {:>9}  {:>8}",
        "t", "true AoA", "UE beam", "misalign", "SNR"
    );
    let mut worst_misalign = 0.0f64;
    for step in 1..=40 {
        // Advance 25 ms of rotation by idling the link.
        sim.wait(25e-3);
        let t = sim.now_s();

        // UE-side maintenance: measure the drop, invert the UE pattern,
        // resolve the sign with one extra measurement.
        let w = ctl.current_weights();
        let p_now = db_from_pow(sim.probe(&w).mean_power_mw().max(1e-20));
        let drop = (baseline_db - p_now).max(0.0);
        if let Some(dev) = estimate_rotation_deg(&ue_geom, ue_beam_deg, drop) {
            if dev > 0.5 {
                // Hypothesis: +dev. Try it, keep whichever is better.
                let try_beam = |sim: &mut LinkSimulator, angle: f64| {
                    sim.rx = UeReceiver::Array {
                        geom: ue_geom,
                        weights: single_beam(&ue_geom, angle),
                    };
                    db_from_pow(sim.probe(&w).mean_power_mw().max(1e-20))
                };
                let p_plus = try_beam(&mut sim, ue_beam_deg + dev);
                let p_minus = try_beam(&mut sim, ue_beam_deg - dev);
                ue_beam_deg += if p_plus >= p_minus { dev } else { -dev };
                sim.rx = UeReceiver::Array {
                    geom: ue_geom,
                    weights: single_beam(&ue_geom, ue_beam_deg),
                };
            }
        }
        // gNB-side maintenance keeps running as usual.
        ctl.maintenance_round(&mut sim);

        // Ground truth: the LOS arrival angle in the UE's (rotated) frame.
        let true_aoa = sim.dynamic.paths_at(t)[0].aoa_deg;
        let misalign = (true_aoa - ue_beam_deg).abs();
        worst_misalign = worst_misalign.max(misalign);
        if step % 5 == 0 {
            println!(
                "{:>5.2}s  {:>9.2}°  {:>9.2}°  {:>8.2}°  {:>7.1} dB",
                t,
                true_aoa,
                ue_beam_deg,
                misalign,
                sim.true_snr_db(&ctl.current_weights())
            );
        }
    }
    println!(
        "\nUE tracked 24°/s rotation with ≤ {worst_misalign:.1}° misalignment \
         (4-element UE HPBW ≈ 26°, so the link never left the main lobe)"
    );
    assert!(worst_misalign < 13.0, "UE lost the beam");
}
