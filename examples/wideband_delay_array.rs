//! Delay-phased-array demo: flat wideband multi-beam response (§3.4).
//!
//! ```text
//! cargo run --release --example wideband_delay_array
//! ```
//!
//! When a multi-beam's two paths differ in propagation delay, a phase-only
//! array gets an interference comb across the band. The paper's delay
//! phased array (Fig. 6) inserts true-time-delay lines per beam and
//! restores a flat response at the full constructive level. This example
//! prints the three responses side by side.

use mmwave_array::delay_array::{
    phase_only_multibeam_response, single_beam_response, DelayPhasedArray, WidebandPath,
};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_dsp::complex::c64;
use mmwave_dsp::units::db_from_pow;

fn main() {
    let geom = ArrayGeometry::ula(16);
    let p1 = WidebandPath {
        aod_deg: 0.0,
        gain: c64(1.0, 0.0),
        tau_s: 20e-9,
    };
    let p2 = WidebandPath {
        aod_deg: 30.0,
        gain: c64(0.9, 0.0),
        tau_s: 25e-9,
    }; // Δτ = 5 ns
    let freqs: Vec<f64> = (0..41).map(|i| -200e6 + 10e6 * i as f64).collect();

    let single = single_beam_response(&geom, 0.0, &[p1, p2], &freqs);
    let comb = phase_only_multibeam_response(&geom, &p1, &p2, &freqs);
    let flat =
        DelayPhasedArray::two_beam_compensated(geom, &p1, &p2).power_response(&[p1, p2], &freqs);

    println!("two-path channel, Δτ = 5 ns over 400 MHz (relative power, dB):\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12}",
        "freq", "single-beam", "phase-only", "delay-comp"
    );
    let reference = single[freqs.len() / 2];
    for (i, f) in freqs.iter().enumerate() {
        let bar = |p: f64| {
            let db = db_from_pow((p / reference).max(1e-6));
            format!("{db:>6.1} dB")
        };
        println!(
            "{:>5.0} MHz  {:>12} {:>12} {:>12}",
            f / 1e6,
            bar(single[i]),
            bar(comb[i]),
            bar(flat[i])
        );
    }
    let ripple = |v: &[f64]| {
        10.0 * (v.iter().cloned().fold(f64::MIN, f64::max)
            / v.iter().cloned().fold(f64::MAX, f64::min))
        .log10()
    };
    println!(
        "\nripple across the band: single {:.2} dB | phase-only multi-beam {:.1} dB | delay-compensated {:.2} dB",
        ripple(&single),
        ripple(&comb),
        ripple(&flat)
    );
    println!("the delay-compensated bank is flat at the constructive (upper-envelope) level — paper Fig. 7/8");
}
