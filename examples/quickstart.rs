//! Quickstart: create a constructive multi-beam link in a conference room.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full mmReliable establishment pipeline on a simulated 28 GHz
//! indoor channel: exhaustive beam training → viable path extraction →
//! two-probe (δ, σ) estimation → constructive multi-beam — then compares
//! the result against a single beam and the genie MRT bound.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmreliable::frontend::{LinkFrontEnd, SnapshotFrontEnd};
use mmwave_array::geometry::ArrayGeometry;
use mmwave_array::steering::single_beam;
use mmwave_channel::channel::{GeometricChannel, UeReceiver};
use mmwave_channel::environment::Scene;
use mmwave_channel::geom2d::v2;
use mmwave_dsp::rng::Rng64;
use mmwave_dsp::units::{db_from_pow, FC_28GHZ};
use mmwave_phy::chanest::ChannelSounder;

fn main() {
    // A 7 m × 10 m conference room; the UE sits 7 m from the gNB, slightly
    // off-center so the two glass-wall bounces have distinct delays.
    let scene = Scene::conference_room(FC_28GHZ);
    let ue = v2(0.9, 7.0);
    let paths = scene.paths_to(ue, 180.0);
    println!("channel paths (AoD / ToF / relative power):");
    for p in &paths {
        println!(
            "  {:>7.1}°  {:>6.2} ns  {:>6.1} dB  {:?}",
            p.aod_deg,
            p.tof_ns,
            db_from_pow(p.effective_gain().norm_sqr() / paths[0].effective_gain().norm_sqr()),
            p.kind
        );
    }

    // The radio: 8×8 phased array, 400 MHz NR waveform, noisy CSI probes
    // with CFO impairments — the controller never sees the truth above.
    let geom = ArrayGeometry::paper_8x8();
    let mut fe = SnapshotFrontEnd::new(
        GeometricChannel::new(paths, FC_28GHZ),
        ChannelSounder::paper_indoor(),
        geom,
        UeReceiver::Omni,
        Rng64::seed(42),
    );

    let mut ctl = MmReliableController::new(MmReliableConfig::paper_default());
    let actions = ctl.establish(&mut fe);
    println!("\nestablishment: {actions:?}");
    println!(
        "probes used: {} (64 training + 2 per extra beam + 1 baseline)",
        fe.probes_used()
    );

    let mb = ctl.multibeam().expect("established");
    println!("\nconstructive multi-beam:");
    for c in mb.components() {
        println!(
            "  beam at {:>7.2}°  δ = {:.2}  σ = {:+.2} rad",
            c.angle_deg, c.amplitude, c.phase_rad
        );
    }

    // Compare against single-beam and the genie bound on the true channel.
    let rx = UeReceiver::Omni;
    let w_multi = ctl.current_weights();
    let w_single = single_beam(&geom, mb.component(0).angle_deg);
    let p_multi = fe.channel.received_power(&geom, &w_multi, &rx);
    let p_single = fe.channel.received_power(&geom, &w_single, &rx);
    let p_oracle = fe.channel.optimal_power(&geom, &rx);
    println!("\nreceived power (relative to single beam):");
    println!("  single beam : 0.00 dB");
    println!("  multi-beam  : {:+.2} dB", db_from_pow(p_multi / p_single));
    println!(
        "  oracle MRT  : {:+.2} dB",
        db_from_pow(p_oracle / p_single)
    );
    println!(
        "\nmulti-beam reaches {:.0}% of the oracle with {} probes instead of per-element sounding",
        100.0 * p_multi / p_oracle,
        fe.probes_used()
    );
}
