//! VR headset scenario: fast rotation plus a passing blocker.
//!
//! ```text
//! cargo run --release --example vr_headset
//! ```
//!
//! The paper's motivating application (§1): a VR headset needs both high
//! throughput and no outages. This example plays a 1-second experiment with
//! 18°/s array rotation and a mid-run human blocker, comparing mmReliable's
//! proactive multi-beam against the single-beam reactive baseline.

use mmreliable::config::MmReliableConfig;
use mmreliable::controller::MmReliableController;
use mmwave_baselines::single_reactive::ReactiveConfig;
use mmwave_baselines::strategy::{BeamStrategy, MmReliableStrategy};
use mmwave_baselines::SingleBeamReactive;
use mmwave_phy::mcs::McsTable;
use mmwave_sim::scenario;

fn main() {
    let mcs = McsTable::nr_table();
    let seed = 7;
    let mut report = Vec::new();
    for which in ["mmReliable", "reactive"] {
        let sc = scenario::rotation_blockage(seed);
        let mut sim = sc.simulator(seed);
        let mut strategy: Box<dyn BeamStrategy> = match which {
            "mmReliable" => Box::new(MmReliableStrategy::new(MmReliableController::new(
                MmReliableConfig::paper_default(),
            ))),
            _ => Box::new(SingleBeamReactive::new(ReactiveConfig::default())),
        };
        let r = sim.run_with_warmup(
            strategy.as_mut(),
            sc.duration_s,
            sc.tick_period_s,
            sc.name,
            sc.warmup_s,
        );
        // Print a coarse SNR strip chart (one char per 20 ms).
        let series = r.snr_series();
        let mut strip = String::new();
        for chunk in series.chunks(160) {
            let mean: f64 = chunk.iter().map(|s| s.1).sum::<f64>() / chunk.len() as f64;
            strip.push(match mean {
                m if m < 6.0 => 'x', // outage
                m if m < 15.0 => '.',
                m if m < 22.0 => '-',
                _ => '=',
            });
        }
        println!("{which:>11}: |{strip}|");
        report.push((
            which,
            r.reliability(),
            r.mean_throughput_bps(&mcs) / 1e6,
            r.probing_overhead(),
        ));
    }
    println!("\n{:>11}  reliability  throughput  probing", "");
    for (name, rel, tput, ovh) in report {
        println!(
            "{name:>11}:   {rel:>8.3}   {tput:>6.0} Mbps   {:>5.1}%",
            100.0 * ovh
        );
    }
    println!("\n('x' = outage, '=' = full-rate; the blocker hits mid-run while the headset keeps rotating)");
}
