//! Facade crate for the mmReliable reproduction workspace.
//!
//! This crate exists to host the workspace-level `examples/` and `tests/`
//! directories; the actual functionality lives in the member crates:
//!
//! - [`mmwave_dsp`] — complex math, FFT, least squares, statistics
//! - [`mmwave_array`] — phased-array geometry, beams, quantization
//! - [`mmwave_channel`] — sparse geometric mmWave channel, blockage, mobility
//! - [`mmwave_phy`] — 5G-NR-style OFDM PHY, reference signals, MCS
//! - [`mmreliable`] — the paper's contribution: constructive multi-beam
//!   creation and proactive maintenance
//! - [`mmwave_baselines`] — single-beam reactive, BeamSpy-like, wide-beam,
//!   oracle beamformers
//! - [`mmwave_sim`] — slot-level link simulator and experiment harness

pub use mmreliable;
pub use mmwave_array;
pub use mmwave_baselines;
pub use mmwave_channel;
pub use mmwave_dsp;
pub use mmwave_phy;
pub use mmwave_sim;
