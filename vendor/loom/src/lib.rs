//! Offline stand-in for the [loom](https://crates.io/crates/loom) model
//! checker, mirroring exactly the API surface this workspace's
//! `--cfg loom` tests use: `loom::model`, `loom::thread`, and
//! `loom::sync::{Arc, Mutex, Condvar, atomic}`.
//!
//! The container builds with no network access, so the real loom (and its
//! exhaustive DPOR interleaving search) is unavailable. This shim keeps
//! the tests *honest about their API* — they compile against loom's
//! namespace and run under `RUSTFLAGS="--cfg loom"` — while executing as
//! a **schedule-stress harness**: the model closure runs many times on
//! real std threads with deliberate yield jitter derived from the
//! iteration index, which perturbs interleavings far more than a single
//! run would see. That catches ordering bugs probabilistically, not
//! exhaustively; swapping in the real loom later is a one-line
//! `Cargo.toml` change and no test edits, which is the point.
//!
//! Determinism note: the jitter schedule is a pure function of the
//! iteration index (no wall clock, no OS entropy), so a failing iteration
//! number reproduces the same yield pattern.

/// Number of schedule-stress iterations per `model` call. Real loom
/// explores interleavings exhaustively; the shim samples this many.
pub const MODEL_ITERATIONS: usize = 256;

use std::cell::Cell;

thread_local! {
    /// Current model iteration, used by [`hint::yield_now_for`] to vary
    /// schedules deterministically across iterations.
    static ITERATION: Cell<usize> = const { Cell::new(0) };
}

/// Runs `f` [`MODEL_ITERATIONS`] times, propagating the first panic with
/// its iteration number for reproduction.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for i in 0..MODEL_ITERATIONS {
        ITERATION.with(|it| it.set(i));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(payload) = result {
            eprintln!("loom(shim): model failed on iteration {i}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// The iteration currently executing (0-based).
pub fn current_iteration() -> usize {
    ITERATION.with(|it| it.get())
}

pub mod hint {
    /// Deterministic schedule jitter: yields `(iteration + salt) % 4`
    /// times. Spawned threads inherit iteration 0; call sites pass a salt
    /// so different program points still diverge.
    pub fn yield_now_for(salt: usize) {
        let n = (super::current_iteration().wrapping_add(salt)) % 4;
        for _ in 0..n {
            std::thread::yield_now();
        }
    }

    pub fn spin_loop() {
        std::hint::spin_loop();
    }
}

pub mod thread {
    pub use std::thread::{current, sleep, spawn, yield_now, JoinHandle};
}

pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    pub mod atomic {
        pub use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_all_iterations() {
        let count = Arc::new(AtomicUsize::new(0));
        let c = count.clone();
        super::model(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), super::MODEL_ITERATIONS);
    }

    #[test]
    fn iteration_is_visible_inside_model() {
        let seen = Arc::new(AtomicUsize::new(0));
        let s = seen.clone();
        super::model(move || {
            s.store(super::current_iteration(), Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), super::MODEL_ITERATIONS - 1);
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn model_propagates_panics() {
        super::model(|| panic!("deliberate"));
    }
}
