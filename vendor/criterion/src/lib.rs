//! A minimal, offline drop-in subset of the [criterion](https://docs.rs/criterion)
//! benchmarking API covering what this workspace's benches use:
//! `Criterion::bench_function`, `benchmark_group`/`bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark closure is warmed up once, then timed
//! over a fixed batch of iterations and reported as mean ns/iter on stdout.
//! Under `cargo test` (which passes `--test` to harness-less bench binaries)
//! every benchmark runs a single iteration as a smoke test, keeping the
//! tier-1 suite fast.

use std::fmt;
use std::hint;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one parameterized benchmark (`group/function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean ns/iter of the last `iter` call (consumed by the runner).
    last_ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, and the only iteration in smoke mode
        if self.iters <= 1 {
            self.last_ns_per_iter = 0.0;
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// The benchmark runner handle.
pub struct Criterion {
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness-less bench binaries with `--test`;
        // treat that (or an explicit env toggle) as smoke mode.
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Self { smoke }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters: if self.smoke { 1 } else { 50 },
            last_ns_per_iter: 0.0,
        };
        f(&mut b);
        if self.smoke {
            println!("bench {id}: ok (smoke)");
        } else {
            println!("bench {id}: {:.0} ns/iter", b.last_ns_per_iter);
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` as `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, &mut f);
        self
    }

    /// Benchmarks `f` as `group/id` with an input handed through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op; reports are emitted eagerly).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion { smoke: true };
        let mut ran = 0;
        c.bench_function("unit", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &x| {
            b.iter(|| black_box(x * x));
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}
