//! A minimal, offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! API, implementing exactly the surface this workspace's property tests
//! use: `proptest!`, range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop::collection::vec`, `prop_map`, `prop_assert*`, `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each `proptest!` test runs its body over `cases` pseudo-random
//! inputs drawn from a deterministic per-test generator (seeded from the
//! test's name), so failures are reproducible run-to-run. No shrinking is
//! performed — on failure the offending input set is printed verbatim.

/// Strategy combinators and generation plumbing.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of pseudo-random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range");
                    let span = (self.end as i64 - self.start as i64) as u64;
                    (self.start as i64 + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 0 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

/// Test-runner plumbing: config, RNG, and case outcomes.
pub mod test_runner {
    /// Per-test configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; that is also affordable here.
            Self { cases: 256 }
        }
    }

    /// Why one generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs (not a failure).
        Reject,
        /// `prop_assert*` failed with this message.
        Fail(String),
    }

    /// A deterministic SplitMix64 stream for value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }

    /// Drives one `proptest!`-generated test. Used by the macro expansion,
    /// not by user code.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = 4096 + 16 * config.cases as u64;
        while passed < config.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "{name}: prop_assume! rejected {rejected} cases \
                             (only {passed}/{} passed)",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{name}: property failed after {passed} passing cases: {msg}");
                }
            }
        }
    }
}

/// The glob-import surface mirrored from real proptest.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias so `prop::collection::vec` resolves as in proptest.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            va,
            vb
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va == vb,
            "assertion failed ({:?} vs {:?}): {}",
            va,
            vb,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            va
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (va, vb) = (&$a, &$b);
        $crate::prop_assert!(
            va != vb,
            "assertion failed (both {:?}): {}",
            va,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (counted separately from failures).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($p:pat in $s:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // The strategy tuple is itself a `Strategy` producing the value
            // tuple; one draw generates every argument.
            let strategies = ($($s,)+);
            $crate::test_runner::run_cases(stringify!($name), &config, |rng| {
                let ($($p,)+) = $crate::strategy::Strategy::new_value(&strategies, rng);
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = f64> {
        (0.0..1.0f64).prop_map(|x| x * 2.0)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0..5.0f64, n in 1usize..9) {
            prop_assert!((-3.0..5.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn map_and_vec_work(v in prop::collection::vec(small(), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|x| (0.0..2.0).contains(x)));
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u32), Just(2u32)], y in 0u32..10) {
            prop_assume!(y != 3);
            prop_assert!(x == 1 || x == 2);
            prop_assert_ne!(y, 3);
            prop_assert_eq!(x.wrapping_mul(0), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honoured(_x in 0u64..10) {
            prop_assert!(true);
        }
    }
}
